//! Workspace symbol extraction: `fn` items, enums and `use` aliases,
//! recovered from the lexed token stream.
//!
//! This is the first half of the analysis layer the call-graph rules
//! run on (the second is [`crate::callgraph`]). It stays deliberately
//! token-level — no type resolution, no macro expansion — and errs on
//! the side of *recording more*: a nested `fn` inside another `fn` is
//! its own item, a `fn` in a `#[cfg(test)]` module is recorded but
//! flagged `is_test`, and a `use a::b as c;` alias is kept so callsite
//! resolution can undo the rename.

use std::collections::BTreeMap;

use crate::lexer::{Lexed, TokKind, Token};
use crate::rules::{in_regions, Regions};

/// How visible a `fn` item is. The dataflow rules only hold plain
/// `pub` items to entry-point obligations; `pub(crate)`/`pub(super)`
/// helpers are internal surface pre-guarded by their public callers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Visibility {
    /// `pub fn`.
    Pub,
    /// `pub(crate)` / `pub(super)` / `pub(in …)`.
    Restricted,
    /// No visibility qualifier.
    Private,
}

/// One `fn` item: where it is, how it is declared, and the token
/// extent of its body (the per-function statement stream the
/// intraprocedural checks walk).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Enclosing `mod` names, outermost first (impl blocks are not
    /// path segments — token-level analysis cannot name them).
    pub module_path: Vec<String>,
    pub vis: Visibility,
    pub is_unsafe: bool,
    /// Carries a `#[target_feature(…)]` attribute.
    pub has_target_feature: bool,
    /// Lives in a `#[cfg(test)]` region or is a `#[test]`/`#[bench]`
    /// item; excluded from guard-dataflow reachability.
    pub is_test: bool,
    /// Line of the first signature token (`pub` when present).
    pub sig_line: u32,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Inclusive token-index range of the body braces, `None` for
    /// bodiless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Half-open token-index range of the return type (after `->`,
    /// before `where`/body), `None` when the fn returns `()`.
    pub ret: Option<(usize, usize)>,
}

/// Everything the analysis layer knows about one file's items.
#[derive(Debug, Default)]
pub struct FileSymbols {
    pub fns: Vec<FnItem>,
    /// Declared `enum` names (the typed-error rule's notion of a
    /// workspace-defined error type).
    pub enums: Vec<String>,
    /// `use a::b as c;` renames: alias → original final segment.
    pub aliases: BTreeMap<String, String>,
    /// Token-index ranges of `use` statements (import paths are not
    /// callsites or atomic-ordering uses).
    pub use_ranges: Vec<(usize, usize)>,
}

impl FileSymbols {
    /// The innermost `fn` whose body contains token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnItem> {
        self.fns
            .iter()
            .filter(|f| f.body.is_some_and(|(a, b)| a <= i && i <= b))
            .min_by_key(|f| f.body.map(|(a, b)| b - a).unwrap_or(usize::MAX))
    }

    /// Whether token index `i` falls inside a `use` statement.
    pub fn in_use(&self, i: usize) -> bool {
        self.use_ranges.iter().any(|&(a, b)| a <= i && i <= b)
    }
}

/// Scans one lexed file. `test_regions` comes from the attribute pass
/// (see `rules::scan_attributes`) and decides `FnItem::is_test`.
pub fn scan(lexed: &Lexed, test_regions: &Regions) -> FileSymbols {
    let toks = &lexed.tokens;
    let mut out = FileSymbols::default();
    let mut depth: i32 = 0;
    // (module name, depth its body lives at) — popped when the brace
    // depth drops back below.
    let mut mods: Vec<(String, i32)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct(b'{') => {
                depth += 1;
                i += 1;
            }
            TokKind::Punct(b'}') => {
                depth -= 1;
                while mods.last().is_some_and(|m| m.1 > depth) {
                    mods.pop();
                }
                i += 1;
            }
            TokKind::Ident if t.text == "mod" => {
                if toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident)
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(b'{'))
                {
                    mods.push((toks[i + 1].text.clone(), depth + 1));
                    i += 2; // the `{` bumps depth on its own iteration
                } else {
                    i += 1; // `mod name;` — out-of-line, nothing to track
                }
            }
            TokKind::Ident if t.text == "use" => {
                let start = i;
                let mut j = i + 1;
                while j < toks.len() && !toks[j].is_punct(b';') {
                    if toks[j].is_ident("as")
                        && toks[j - 1].kind == TokKind::Ident
                        && toks.get(j + 1).is_some_and(|n| n.kind == TokKind::Ident)
                    {
                        out.aliases
                            .insert(toks[j + 1].text.clone(), toks[j - 1].text.clone());
                    }
                    j += 1;
                }
                out.use_ranges.push((start, j));
                i = j + 1;
            }
            TokKind::Ident if t.text == "enum" => {
                if let Some(n) = toks.get(i + 1) {
                    if n.kind == TokKind::Ident {
                        out.enums.push(n.text.clone());
                    }
                }
                i += 2;
            }
            // `fn` followed by a name is an item; `fn(` is a pointer
            // type and is skipped.
            TokKind::Ident if t.text == "fn" => {
                if toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Ident) {
                    let item = scan_fn(toks, i, &mods, test_regions);
                    out.fns.push(item);
                }
                // Continue *into* the signature/body: nested fns and
                // mods are still items, and depth tracking needs the
                // braces.
                i += 1;
            }
            _ => i += 1,
        }
    }
    out
}

/// Extracts one `fn` item starting at the `fn` keyword (`toks[fn_i]`).
fn scan_fn(toks: &[Token], fn_i: usize, mods: &[(String, i32)], test_regions: &Regions) -> FnItem {
    let name = toks[fn_i + 1].text.clone();
    // Walk the declaration modifiers backward from `fn`:
    // `pub (crate) const unsafe extern "C" fn …` in any prefix order.
    let mut vis = Visibility::Private;
    let mut is_unsafe = false;
    let mut sig_line = toks[fn_i].line;
    let mut k = fn_i as isize - 1;
    while k >= 0 {
        let t = &toks[k as usize];
        match t.kind {
            TokKind::Ident if matches!(t.text.as_str(), "const" | "async" | "extern") => {
                sig_line = t.line;
                k -= 1;
            }
            TokKind::Str => k -= 1, // extern ABI string
            TokKind::Ident if t.text == "unsafe" => {
                is_unsafe = true;
                sig_line = t.line;
                k -= 1;
            }
            TokKind::Ident if t.text == "pub" => {
                vis = Visibility::Pub;
                sig_line = t.line;
                k -= 1;
                break;
            }
            TokKind::Punct(b')') => {
                // Possibly the `)` of `pub(crate)`; match back to `(`.
                let mut d = 1i32;
                let mut m = k - 1;
                while m >= 0 && d > 0 {
                    match toks[m as usize].kind {
                        TokKind::Punct(b')') => d += 1,
                        TokKind::Punct(b'(') => d -= 1,
                        _ => {}
                    }
                    m -= 1;
                }
                if m >= 0 && toks[m as usize].is_ident("pub") {
                    vis = Visibility::Restricted;
                    sig_line = toks[m as usize].line;
                    k = m - 1;
                }
                break;
            }
            _ => break,
        }
    }
    // Attributes above the declaration: `#[target_feature(…)]`.
    let mut has_target_feature = false;
    while k >= 1 && toks[k as usize].is_punct(b']') {
        let mut d = 1i32;
        let mut m = k - 1;
        let mut saw_tf = false;
        while m >= 0 && d > 0 {
            match toks[m as usize].kind {
                TokKind::Punct(b']') => d += 1,
                TokKind::Punct(b'[') => d -= 1,
                TokKind::Ident if toks[m as usize].text == "target_feature" => saw_tf = true,
                _ => {}
            }
            m -= 1;
        }
        if m >= 0 && toks[m as usize].is_punct(b'#') {
            has_target_feature |= saw_tf;
            k = m - 1;
        } else {
            break;
        }
    }

    // Forward over generics and parameters to the return type / body.
    let mut j = fn_i + 2;
    if toks.get(j).is_some_and(|t| t.is_punct(b'<')) {
        let mut d = 0i32;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct(b'<') => d += 1,
                // The `>` of a `->` inside generic bounds (Fn traits)
                // does not close an angle bracket.
                TokKind::Punct(b'>') if !toks[j - 1].is_punct(b'-') => {
                    d -= 1;
                    if d == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    let mut ret = None;
    let mut body = None;
    if toks.get(j).is_some_and(|t| t.is_punct(b'(')) {
        let mut d = 0i32;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct(b'(') => d += 1,
                TokKind::Punct(b')') => {
                    d -= 1;
                    if d == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if toks.get(j).is_some_and(|t| t.is_punct(b'-'))
            && toks.get(j + 1).is_some_and(|t| t.is_punct(b'>'))
        {
            let start = j + 2;
            let mut e = start;
            let mut d = 0i32;
            while e < toks.len() {
                let t = &toks[e];
                match t.kind {
                    TokKind::Punct(b'(') | TokKind::Punct(b'[') => d += 1,
                    TokKind::Punct(b')') | TokKind::Punct(b']') => {
                        if d == 0 {
                            break;
                        }
                        d -= 1;
                    }
                    TokKind::Punct(b'{') | TokKind::Punct(b';') if d == 0 => break,
                    TokKind::Ident if d == 0 && t.text == "where" => break,
                    _ => {}
                }
                e += 1;
            }
            ret = Some((start, e));
            j = e;
        }
        // The body: the first top-level `{` (past any where clause),
        // or a `;` for bodiless trait declarations.
        let mut d = 0i32;
        while j < toks.len() {
            match toks[j].kind {
                TokKind::Punct(b'(') | TokKind::Punct(b'[') => d += 1,
                TokKind::Punct(b')') | TokKind::Punct(b']') => d -= 1,
                TokKind::Punct(b';') if d == 0 => break,
                TokKind::Punct(b'{') if d == 0 => {
                    let open = j;
                    let mut bd = 0i32;
                    while j < toks.len() {
                        match toks[j].kind {
                            TokKind::Punct(b'{') => bd += 1,
                            TokKind::Punct(b'}') => {
                                bd -= 1;
                                if bd == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    body = Some((open, j.min(toks.len() - 1)));
                    break;
                }
                _ => {}
            }
            j += 1;
        }
    }

    FnItem {
        name,
        module_path: mods.iter().map(|(n, _)| n.clone()).collect(),
        vis,
        is_unsafe,
        has_target_feature,
        is_test: in_regions(test_regions, sig_line),
        sig_line,
        fn_idx: fn_i,
        body,
        ret,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::scan_attributes;

    fn scan_src(src: &str) -> FileSymbols {
        let lexed = lex(src);
        let (test_regions, _) = scan_attributes(&lexed.tokens);
        scan(&lexed, &test_regions)
    }

    #[test]
    fn fn_items_carry_path_visibility_and_attrs() {
        let src = "\
mod outer {
    pub mod inner {
        #[target_feature(enable = \"avx2\")]
        pub unsafe fn fast(x: u32) -> u32 { x }
        pub(crate) fn helper() {}
        fn private_one() {}
    }
}
#[cfg(test)]
mod tests {
    #[test]
    fn a_test() { helper(); }
}
";
        let s = scan_src(src);
        let names: Vec<&str> = s.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["fast", "helper", "private_one", "a_test"]);
        let fast = &s.fns[0];
        assert_eq!(fast.module_path, ["outer", "inner"]);
        assert_eq!(fast.vis, Visibility::Pub);
        assert!(fast.is_unsafe && fast.has_target_feature && !fast.is_test);
        assert_eq!(s.fns[1].vis, Visibility::Restricted);
        assert_eq!(s.fns[2].vis, Visibility::Private);
        assert!(s.fns[3].is_test, "#[cfg(test)] fns are flagged");
    }

    #[test]
    fn use_aliases_and_ranges_are_recorded() {
        let src = "use a::b as c;\nuse x::{y as z, w};\nfn f() { c(); }\n";
        let s = scan_src(src);
        assert_eq!(s.aliases.get("c").map(String::as_str), Some("b"));
        assert_eq!(s.aliases.get("z").map(String::as_str), Some("y"));
        assert!(s.in_use(1), "token inside `use` statement");
        assert!(!s.in_use(100));
    }

    #[test]
    fn return_types_and_bodies_are_delimited() {
        let src = "pub fn g<T: Fn(u32) -> bool>(t: T) -> Result<u32, QueryError> where T: Sized {\n    t(1);\n    Ok(2)\n}\nfn unit() {}\ntrait T { fn decl(&self) -> u32; }\n";
        let s = scan_src(src);
        let g = &s.fns[0];
        let (a, b) = g.ret.expect("g has a return type");
        let lexed = lex(src);
        let ret_text: Vec<&str> = lexed.tokens[a..b].iter().map(|t| t.text.as_str()).collect();
        assert_eq!(ret_text, ["Result", "<", "u32", ",", "QueryError", ">"]);
        assert!(g.body.is_some());
        assert!(s.fns[1].ret.is_none());
        assert!(s.fns[2].body.is_none(), "trait decl has no body");
    }

    #[test]
    fn enclosing_fn_picks_the_innermost() {
        let src = "fn outer() {\n    fn inner() { work(); }\n    inner();\n}\n";
        let s = scan_src(src);
        let lexed = lex(src);
        let work_idx = lexed
            .tokens
            .iter()
            .position(|t| t.is_ident("work"))
            .unwrap();
        assert_eq!(s.enclosing_fn(work_idx).unwrap().name, "inner");
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let src = "fn apply(f: fn(u32) -> u32) -> u32 { f(1) }\n";
        let s = scan_src(src);
        assert_eq!(s.fns.len(), 1);
        assert_eq!(s.fns[0].name, "apply");
    }
}
