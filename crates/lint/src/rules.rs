//! The rule registry, the inline-allow mechanism, and the
//! single-file token rules (unsafe-hygiene, panic-free-serving,
//! debug-assert-discipline).
//!
//! The concurrency rules live in [`crate::concurrency`] and the
//! call-graph dataflow rules in [`crate::dataflow`]; all of them
//! report [`Diagnostic`]s at `file:line` granularity and honour the
//! allow convention:
//!
//! ```text
//! // lint: allow(<rule-name>) — <justification>
//! ```
//!
//! A *justified* allow (on its own line: covers the next code line;
//! trailing: covers its own line) suppresses that rule there. A bare
//! allow — missing or trivially short justification, or an unknown
//! rule name — is itself a violation (`allow-syntax`): the point of
//! the mechanism is to force the "why" into the tree.

use std::fmt;
use std::path::{Path, PathBuf};

use crate::lexer::{Comment, Lexed, TokKind, Token};

/// The rule a diagnostic belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `unsafe` blocks/fns must be immediately preceded by a
    /// `// SAFETY:` comment (a `# Safety` doc section also counts).
    UnsafeHygiene,
    /// No `unwrap()` / `expect()` / `panic!` / `todo!` /
    /// `unimplemented!` in non-test serving-crate library code.
    PanicFreeServing,
    /// `pub fn` search/mutation entry points must transitively reach a
    /// degenerate-input guard through the call graph.
    GuardDataflow,
    /// `feature = "…"` names must exist in the crate's `Cargo.toml`,
    /// and declared feature chains must propagate to every dependency
    /// that declares the same feature.
    FeatureGates,
    /// Bare `assert!` / `assert_eq!` / `assert_ne!` in hot-path
    /// modules must be `debug_assert!` or carry a justified allow.
    DebugAssertDiscipline,
    /// Every `Ordering::` use is `Relaxed` inside an allowlisted
    /// counter module, or carries a `// HB:` comment naming its
    /// happens-before partner site.
    AtomicOrderingDiscipline,
    /// `Arc::make_mut` only inside `core/src/shard.rs` functions that
    /// consult the dirty gate (`has_dirty_nodes`) first.
    CowDiscipline,
    /// A pinned epoch must flow into a binding or return value, never
    /// be dropped in the statement that pinned it.
    EpochPinBalance,
    /// Public `try_*`/fallible serving APIs return `Result` with a
    /// workspace-defined error enum, never `String`/`Box<dyn Error>`.
    TypedErrorDiscipline,
    /// Malformed `lint: allow` comments (bare, unknown rule).
    AllowSyntax,
}

impl Rule {
    /// The kebab-case name used in allow comments and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnsafeHygiene => "unsafe-hygiene",
            Rule::PanicFreeServing => "panic-free-serving",
            Rule::GuardDataflow => "guard-dataflow",
            Rule::FeatureGates => "feature-gates",
            Rule::DebugAssertDiscipline => "debug-assert-discipline",
            Rule::AtomicOrderingDiscipline => "atomic-ordering-discipline",
            Rule::CowDiscipline => "cow-discipline",
            Rule::EpochPinBalance => "epoch-pin-balance",
            Rule::TypedErrorDiscipline => "typed-error-discipline",
            Rule::AllowSyntax => "allow-syntax",
        }
    }

    /// Parses an allow-comment rule name. `allow-syntax` is not
    /// allowable by design — a malformed allow cannot excuse itself.
    pub fn from_name(name: &str) -> Option<Rule> {
        match name {
            "unsafe-hygiene" => Some(Rule::UnsafeHygiene),
            "panic-free-serving" => Some(Rule::PanicFreeServing),
            "guard-dataflow" => Some(Rule::GuardDataflow),
            "feature-gates" => Some(Rule::FeatureGates),
            "debug-assert-discipline" => Some(Rule::DebugAssertDiscipline),
            "atomic-ordering-discipline" => Some(Rule::AtomicOrderingDiscipline),
            "cow-discipline" => Some(Rule::CowDiscipline),
            "epoch-pin-balance" => Some(Rule::EpochPinBalance),
            "typed-error-discipline" => Some(Rule::TypedErrorDiscipline),
            _ => None,
        }
    }

    /// Every rule, for `--list-rules`.
    pub const ALL: [Rule; 10] = [
        Rule::UnsafeHygiene,
        Rule::PanicFreeServing,
        Rule::GuardDataflow,
        Rule::FeatureGates,
        Rule::DebugAssertDiscipline,
        Rule::AtomicOrderingDiscipline,
        Rule::CowDiscipline,
        Rule::EpochPinBalance,
        Rule::TypedErrorDiscipline,
        Rule::AllowSyntax,
    ];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One violation.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub file: PathBuf,
    pub line: u32,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Which rules apply to one source file (decided per crate/module by
/// the engine in `lib.rs`).
#[derive(Debug, Clone, Copy, Default)]
pub struct FilePolicy {
    /// Apply [`Rule::PanicFreeServing`].
    pub panic_free: bool,
    /// Apply [`Rule::DebugAssertDiscipline`].
    pub hot_path: bool,
    /// Apply [`Rule::GuardDataflow`] to this file's entry points.
    pub guard_surface: bool,
    /// Apply the concurrency rules ([`Rule::AtomicOrderingDiscipline`],
    /// [`Rule::CowDiscipline`], [`Rule::EpochPinBalance`]).
    pub concurrency: bool,
    /// This file is an allowlisted counter module: bare
    /// `Ordering::Relaxed` is the sanctioned idiom here.
    pub atomic_counters: bool,
    /// This file is the sanctioned copy-on-write home
    /// (`core/src/shard.rs`): `Arc::make_mut` is legal when the
    /// enclosing function consults the dirty gate first.
    pub cow_home: bool,
    /// Apply [`Rule::TypedErrorDiscipline`] to this file's public
    /// fallible APIs.
    pub typed_errors: bool,
}

/// A parsed, well-formed allow comment.
#[derive(Debug)]
pub struct Allow {
    pub rule: Rule,
    /// The inclusive line range this allow covers: a trailing allow
    /// covers its own line; an own-line allow covers the statement
    /// that starts on the next code line (through the terminating
    /// `;`/`,`, or up to a block opener — multi-line method chains are
    /// one suppression site, function bodies are not).
    pub target: (u32, u32),
}

/// Whether `allows` suppresses `rule` at `line`.
pub fn is_allowed(allows: &[Allow], rule: Rule, line: u32) -> bool {
    allows
        .iter()
        .any(|a| a.rule == rule && a.target.0 <= line && line <= a.target.1)
}

/// `(line_start, line_end)` inclusive ranges exempt from the panic and
/// assert rules (`#[cfg(test)]` modules, `#[test]`/`#[bench]` items).
pub type Regions = Vec<(u32, u32)>;

pub fn in_regions(regions: &Regions, line: u32) -> bool {
    regions.iter().any(|&(a, b)| a <= line && line <= b)
}

// ---------------------------------------------------------------------------
// Allow comments
// ---------------------------------------------------------------------------

/// Minimum characters a justification must carry to count as one.
const MIN_JUSTIFICATION: usize = 8;

pub fn parse_allows(path: &Path, lexed: &Lexed) -> (Vec<Allow>, Vec<Diagnostic>) {
    let mut allows = Vec::new();
    let mut diags = Vec::new();
    for c in &lexed.comments {
        // Allow directives are plain `//` comments; doc comments that
        // merely *describe* the syntax are not directives.
        let t = c.text.trim_start();
        if t.starts_with("///")
            || t.starts_with("//!")
            || t.starts_with("/**")
            || t.starts_with("/*!")
        {
            continue;
        }
        let Some(pos) = c.text.find("lint:") else {
            continue;
        };
        let rest = c.text[pos + 5..].trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            diags.push(Diagnostic {
                file: path.to_path_buf(),
                line: c.line,
                rule: Rule::AllowSyntax,
                message: "`lint:` comment is not of the form \
                          `lint: allow(<rule>) — <justification>`"
                    .to_string(),
            });
            continue;
        };
        let rest = rest.trim_start();
        let (name, after) = match rest.strip_prefix('(').and_then(|r| r.split_once(')')) {
            Some((n, a)) => (n.trim(), a),
            None => {
                diags.push(Diagnostic {
                    file: path.to_path_buf(),
                    line: c.line,
                    rule: Rule::AllowSyntax,
                    message: "malformed allow: expected `allow(<rule>)`".to_string(),
                });
                continue;
            }
        };
        let Some(rule) = Rule::from_name(name) else {
            diags.push(Diagnostic {
                file: path.to_path_buf(),
                line: c.line,
                rule: Rule::AllowSyntax,
                message: format!(
                    "unknown rule `{name}` in allow (known: {})",
                    Rule::ALL.map(Rule::name).join(", ")
                ),
            });
            continue;
        };
        // The justification: everything after the closing paren, sans
        // separator dashes. Must actually say something.
        let justification = after
            .trim_start()
            .trim_start_matches(['—', '–', '-', ':'])
            .trim();
        if justification.chars().count() < MIN_JUSTIFICATION {
            diags.push(Diagnostic {
                file: path.to_path_buf(),
                line: c.line,
                rule: Rule::AllowSyntax,
                message: format!(
                    "bare allow for `{name}`: a justification is required \
                     (`lint: allow({name}) — <why this is sound here>`)"
                ),
            });
            continue;
        }
        let target = if c.trailing {
            (c.line, c.line)
        } else {
            statement_extent(lexed, c.end_line)
        };
        allows.push(Allow { rule, target });
    }
    (allows, diags)
}

/// The inclusive line span of the statement starting on the first code
/// line after `after`: it runs through the terminating `;` or `,` at
/// bracket depth zero, and stops early at a block opener `{` or an
/// unmatched closer — so an allow before a multi-line method chain
/// covers the whole chain, but an allow before a `fn` does not blanket
/// its body.
pub fn statement_extent(lexed: &Lexed, after: u32) -> (u32, u32) {
    let toks = &lexed.tokens;
    let Some(first) = toks.iter().position(|t| t.line > after) else {
        return (after + 1, after + 1);
    };
    let start = toks[first].line;
    let mut depth = 0i32;
    for t in &toks[first..] {
        match t.kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => {
                if depth == 0 {
                    return (start, t.line);
                }
                depth -= 1;
            }
            TokKind::Punct(b'{') | TokKind::Punct(b'}') if depth == 0 => {
                return (start, t.line);
            }
            TokKind::Punct(b';') | TokKind::Punct(b',') if depth == 0 => {
                return (start, t.line);
            }
            _ => {}
        }
    }
    (start, toks.last().map(|t| t.line).unwrap_or(start))
}

// ---------------------------------------------------------------------------
// Attribute / test-region scanning
// ---------------------------------------------------------------------------

/// One pass over the token stream: records the line span of every
/// attribute (so the comment-adjacency walks can step over them) and
/// the line regions of test-gated items (`#[cfg(test)] mod`,
/// `#[test] fn`, …).
pub fn scan_attributes(tokens: &[Token]) -> (Regions, Regions) {
    let mut test_regions: Regions = Vec::new();
    let mut attr_lines: Regions = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if !tokens[i].is_punct(b'#') {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        let inner = j < tokens.len() && tokens[j].is_punct(b'!');
        if inner {
            j += 1;
        }
        if j >= tokens.len() || !tokens[j].is_punct(b'[') {
            i += 1;
            continue;
        }
        // Consume to the matching `]`.
        let start_line = tokens[i].line;
        let mut depth = 0i32;
        let mut has_test = false;
        let mut has_not = false;
        while j < tokens.len() {
            let t = &tokens[j];
            match t.kind {
                TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokKind::Ident => {
                    if t.text == "test" || t.text == "bench" {
                        has_test = true;
                    }
                    if t.text == "not" {
                        has_not = true;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let attr_end = j.min(tokens.len().saturating_sub(1));
        attr_lines.push((start_line, tokens[attr_end].line));
        j += 1; // past `]`
                // `#[cfg(not(test))]` gates *non*-test code: not exempt.
        if has_test && !has_not && !inner {
            if let Some((_, end_line)) = item_extent(tokens, j) {
                test_regions.push((start_line, end_line));
            }
        }
        i = j;
    }
    (test_regions, attr_lines)
}

/// From token index `j` (just past an item's attributes), the item's
/// extent: `(open index, last line)`. The item ends at the matching
/// `}` of its first top-level brace, or at a top-level `;`.
pub fn item_extent(tokens: &[Token], mut j: usize) -> Option<(usize, u32)> {
    let mut paren = 0i32;
    while j < tokens.len() {
        match tokens[j].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => paren += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => paren -= 1,
            TokKind::Punct(b';') if paren == 0 => return Some((j, tokens[j].line)),
            TokKind::Punct(b'{') if paren == 0 => {
                let open = j;
                let mut depth = 0i32;
                while j < tokens.len() {
                    match tokens[j].kind {
                        TokKind::Punct(b'{') => depth += 1,
                        TokKind::Punct(b'}') => {
                            depth -= 1;
                            if depth == 0 {
                                return Some((open, tokens[j].line));
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                return Some((open, tokens.last()?.line));
            }
            _ => {}
        }
        j += 1;
    }
    None
}

// ---------------------------------------------------------------------------
// Comment-adjacency walks (SAFETY / HB)
// ---------------------------------------------------------------------------

/// Walks upward from `line` through contiguous comment/attribute lines
/// looking for a comment satisfying `pred`. A blank line or a code
/// line ends the walk. A trailing comment on `line` itself also
/// counts.
pub fn comment_covers(
    lexed: &Lexed,
    attr_lines: &Regions,
    line: u32,
    pred: &dyn Fn(&Comment) -> bool,
) -> bool {
    let comment_at = |l: u32| {
        lexed
            .comments
            .iter()
            .find(|c| c.line <= l && l <= c.end_line)
    };
    if let Some(c) = comment_at(line) {
        if c.trailing && pred(c) {
            return true;
        }
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if let Some(c) = comment_at(l) {
            if pred(c) {
                return true;
            }
            l = c.line; // jump to the top of a multi-line comment
            continue;
        }
        if in_regions(attr_lines, l) {
            continue;
        }
        // A code statement or a blank line breaks adjacency:
        // "immediately preceding" means contiguous.
        return false;
    }
    false
}

// ---------------------------------------------------------------------------
// Rule: unsafe-hygiene
// ---------------------------------------------------------------------------

pub fn check_unsafe_hygiene(
    path: &Path,
    lexed: &Lexed,
    attr_lines: &Regions,
    allowed: &dyn Fn(Rule, u32) -> bool,
    diags: &mut Vec<Diagnostic>,
) {
    let is_safety = |c: &Comment| c.text.contains("SAFETY:") || c.text.contains("# Safety");
    for t in &lexed.tokens {
        if !t.is_ident("unsafe") {
            continue;
        }
        let line = t.line;
        if allowed(Rule::UnsafeHygiene, line) {
            continue;
        }
        if comment_covers(lexed, attr_lines, line, &is_safety) {
            continue;
        }
        diags.push(Diagnostic {
            file: path.to_path_buf(),
            line,
            rule: Rule::UnsafeHygiene,
            message: "`unsafe` without an immediately preceding `// SAFETY:` comment \
                      stating the invariant it relies on"
                .to_string(),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule: panic-free-serving
// ---------------------------------------------------------------------------

pub fn check_panic_free(
    path: &Path,
    lexed: &Lexed,
    test_regions: &Regions,
    allowed: &dyn Fn(Rule, u32) -> bool,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let construct = match t.text.as_str() {
            "unwrap" | "expect" => {
                let dotted = i > 0 && toks[i - 1].is_punct(b'.');
                let called = toks.get(i + 1).is_some_and(|n| n.is_punct(b'('));
                if dotted && called {
                    format!(".{}()", t.text)
                } else {
                    continue;
                }
            }
            "panic" | "todo" | "unimplemented" => {
                if toks.get(i + 1).is_some_and(|n| n.is_punct(b'!')) {
                    format!("{}!", t.text)
                } else {
                    continue;
                }
            }
            _ => continue,
        };
        let line = t.line;
        if in_regions(test_regions, line) || allowed(Rule::PanicFreeServing, line) {
            continue;
        }
        diags.push(Diagnostic {
            file: path.to_path_buf(),
            line,
            rule: Rule::PanicFreeServing,
            message: format!(
                "`{construct}` in serving-path library code: return a typed error \
                 (`PipelineError` at the pipeline layer) or add a justified \
                 `// lint: allow(panic-free-serving)`"
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Rule: debug-assert-discipline
// ---------------------------------------------------------------------------

pub fn check_debug_assert(
    path: &Path,
    lexed: &Lexed,
    test_regions: &Regions,
    allowed: &dyn Fn(Rule, u32) -> bool,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !matches!(t.text.as_str(), "assert" | "assert_eq" | "assert_ne")
            || !toks.get(i + 1).is_some_and(|n| n.is_punct(b'!'))
        {
            continue;
        }
        let line = t.line;
        if in_regions(test_regions, line) || allowed(Rule::DebugAssertDiscipline, line) {
            continue;
        }
        diags.push(Diagnostic {
            file: path.to_path_buf(),
            line,
            rule: Rule::DebugAssertDiscipline,
            message: format!(
                "bare `{}!` in a hot-path module: use `debug_{}!`, or keep it with a \
                 justified `// lint: allow(debug-assert-discipline)` when the check is \
                 load-bearing in release builds",
                t.text, t.text
            ),
        });
    }
}

// ---------------------------------------------------------------------------
// Entry-point convention (consumed by the guard-dataflow rule)
// ---------------------------------------------------------------------------

/// Whether a `pub fn` name is a search/mutation entry point by the
/// repo convention. The adaptive-topology surface (split/merge,
/// policy stepping, worker partitioning, per-subset serving) is
/// entry-point surface too: each must refuse quarantined or
/// stale-pinned shards before touching topology, or filter them
/// before serving.
pub fn is_entry_point_name(name: &str) -> bool {
    name == "knn"
        || name == "nearest"
        || name == "insert"
        || name == "delete"
        || name == "split_shard"
        || name == "merge_shards"
        || name == "adapt_step"
        || name == "worker_partition"
        || name == "search_batch_shards"
        || name == "search_batch_shard_parallel"
        || (name.starts_with("radius_") && name != "radius_is_searchable")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_file;

    fn check(src: &str, policy: FilePolicy) -> Vec<Diagnostic> {
        check_file(Path::new("mem.rs"), src, policy)
    }

    const ALL: FilePolicy = FilePolicy {
        panic_free: true,
        hot_path: true,
        guard_surface: true,
        concurrency: false,
        atomic_counters: false,
        cow_home: false,
        typed_errors: false,
    };

    #[test]
    fn unsafe_block_requires_safety_comment() {
        let bad = "fn f() {\n    unsafe { g(); }\n}\n";
        let d = check(bad, ALL);
        assert_eq!(d.len(), 1, "{d:?}");
        assert_eq!(d[0].rule, Rule::UnsafeHygiene);
        assert_eq!(d[0].line, 2);

        let good =
            "fn f() {\n    // SAFETY: g has no preconditions here.\n    unsafe { g(); }\n}\n";
        assert!(check(good, ALL).is_empty());
    }

    #[test]
    fn safety_walk_steps_over_attributes_and_doc_blocks() {
        let good = "/// Does things.\n///\n/// # Safety\n///\n/// Caller checks bounds.\n\
                    #[inline]\npub unsafe fn f() {}\n";
        assert!(check(good, ALL).is_empty());
        let bad = "/// Does things, no safety section.\n#[inline]\npub unsafe fn f() {}\n";
        let d = check(bad, ALL);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::UnsafeHygiene);
    }

    #[test]
    fn blank_line_breaks_safety_adjacency() {
        let bad = "// SAFETY: stale comment far above.\n\nfn f() {\n    unsafe { g(); }\n}\n";
        assert_eq!(check(bad, ALL).len(), 1);
    }

    #[test]
    fn panic_free_flags_and_allows() {
        let bad = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let d = check(bad, ALL);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::PanicFreeServing);

        let allowed = "fn f(x: Option<u32>) -> u32 {\n    \
            // lint: allow(panic-free-serving) — x is Some by construction two lines up.\n    \
            x.unwrap()\n}\n";
        assert!(check(allowed, ALL).is_empty());

        let trailing = "fn f(x: Option<u32>) -> u32 {\n    \
            x.unwrap() // lint: allow(panic-free-serving) — Some by construction.\n}\n";
        assert!(check(trailing, ALL).is_empty());
    }

    #[test]
    fn test_code_is_exempt_from_panic_rules() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { None::<u32>.unwrap(); panic!(\"x\"); assert!(true); }\n}\n";
        assert!(check(src, ALL).is_empty());
        // …but cfg(not(test)) is not test code.
        let src = "#[cfg(not(test))]\nfn f(x: Option<u32>) { x.unwrap(); }\n";
        assert_eq!(check(src, ALL).len(), 1);
    }

    #[test]
    fn bare_allow_is_rejected() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    // lint: allow(panic-free-serving)\n    x.unwrap()\n}\n";
        let d = check(src, ALL);
        // The bare allow is flagged AND does not suppress the unwrap.
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d.iter().any(|x| x.rule == Rule::AllowSyntax));
        assert!(d.iter().any(|x| x.rule == Rule::PanicFreeServing));
    }

    #[test]
    fn unknown_rule_allow_is_rejected() {
        let src = "// lint: allow(warp-drive) — engage.\nfn f() {}\n";
        let d = check(src, ALL);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::AllowSyntax);
    }

    #[test]
    fn retired_guard_coverage_name_is_unknown() {
        let src = "// lint: allow(guard-coverage) — the rule this excused is retired.\nfn f() {}\n";
        let d = check(src, ALL);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::AllowSyntax);
    }

    #[test]
    fn bare_assert_flagged_in_hot_path_only() {
        let src = "fn f(n: usize) { assert!(n > 0); debug_assert!(n < 10); }\n";
        let hot = check(src, ALL);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].rule, Rule::DebugAssertDiscipline);
        let cold = check(
            src,
            FilePolicy {
                hot_path: false,
                ..ALL
            },
        );
        assert!(cold.is_empty());
    }
}
