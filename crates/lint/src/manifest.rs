//! A deliberately small `Cargo.toml` reader — only the shapes this
//! workspace actually uses (the build environment is offline, so no
//! `toml` crate).
//!
//! Parsed per crate:
//!
//! * `package.name`,
//! * the `[features]` table: `name = ["entry", …]`, arrays possibly
//!   spanning multiple lines,
//! * dependency names from `[dependencies]` / `[dev-dependencies]`
//!   (`foo.workspace = true`, `foo = { … }` and `foo = "…"` forms),
//! * from the workspace root only: `[workspace.dependencies]`
//!   `name = { path = "…" }` entries, which map dependency names to
//!   workspace crate directories, and the `members` list.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One crate manifest's lint-relevant surface.
#[derive(Debug, Default, Clone)]
pub struct Manifest {
    /// `package.name` (empty for a virtual manifest).
    pub name: String,
    /// Feature name → list of entries exactly as written
    /// (`"parallel"`, `"bonsai-core/simd"`, …), in declaration order.
    pub features: Vec<(String, Vec<String>)>,
    /// Direct dependency names from `[dependencies]` and
    /// `[dev-dependencies]`.
    pub deps: Vec<String>,
    /// `[workspace.dependencies]` name → path (workspace root only).
    pub workspace_dep_paths: BTreeMap<String, PathBuf>,
    /// `[workspace] members` paths (workspace root only).
    pub members: Vec<String>,
    /// The line each feature was declared on (diagnostics).
    pub feature_lines: BTreeMap<String, u32>,
}

impl Manifest {
    /// Whether `feature` is declared in `[features]`.
    pub fn has_feature(&self, feature: &str) -> bool {
        self.features.iter().any(|(n, _)| n == feature)
    }

    /// The entry list of `feature`, if declared.
    pub fn feature_entries(&self, feature: &str) -> Option<&[String]> {
        self.features
            .iter()
            .find(|(n, _)| n == feature)
            .map(|(_, e)| e.as_slice())
    }
}

/// Parses the manifest at `path`. Returns a default (empty) manifest
/// when the file cannot be read — missing manifests are reported by
/// the caller, not here.
pub fn parse(path: &Path) -> Manifest {
    let Ok(src) = std::fs::read_to_string(path) else {
        return Manifest::default();
    };
    parse_str(&src)
}

/// Section the line cursor is in.
#[derive(Debug, PartialEq, Clone)]
enum Section {
    Package,
    Features,
    Deps,
    Workspace,
    WorkspaceDeps,
    Other,
}

/// See [`parse`].
pub fn parse_str(src: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = Section::Other;
    let mut lines = src.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = match line.as_str() {
                "[package]" => Section::Package,
                "[features]" => Section::Features,
                "[dependencies]" | "[dev-dependencies]" | "[build-dependencies]" => Section::Deps,
                "[workspace]" => Section::Workspace,
                "[workspace.dependencies]" => Section::WorkspaceDeps,
                _ => Section::Other,
            };
            continue;
        }
        let Some((key_raw, mut val)) = line
            .split_once('=')
            .map(|(k, v)| (k.trim(), v.trim().to_string()))
        else {
            continue;
        };
        // Accumulate multi-line arrays / inline tables.
        let mut open_brackets = val.matches('[').count() as i64 - val.matches(']').count() as i64;
        while open_brackets > 0 {
            let Some((_, next)) = lines.next() else { break };
            let next = strip_toml_comment(next);
            open_brackets += next.matches('[').count() as i64 - next.matches(']').count() as i64;
            val.push(' ');
            val.push_str(next.trim());
        }
        match section {
            Section::Package if key_raw == "name" => {
                m.name = unquote(&val);
            }
            Section::Features => {
                let entries = parse_string_array(&val);
                m.feature_lines.insert(key_raw.to_string(), idx as u32 + 1);
                m.features.push((key_raw.to_string(), entries));
            }
            Section::Deps => {
                // `foo.workspace = true` / `foo = { … }` / `foo = "1"`.
                let dep = key_raw.split('.').next().unwrap_or(key_raw).trim();
                if !dep.is_empty() {
                    m.deps.push(dep.trim_matches('"').to_string());
                }
            }
            Section::Workspace if key_raw == "members" => {
                m.members = parse_string_array(&val);
            }
            Section::WorkspaceDeps => {
                let dep = key_raw.split('.').next().unwrap_or(key_raw).trim();
                if let Some(p) = extract_path(&val) {
                    m.workspace_dep_paths
                        .insert(dep.trim_matches('"').to_string(), PathBuf::from(p));
                }
            }
            _ => {}
        }
    }
    m
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// `["a", "b"]` → `["a", "b"]` (tolerant of anything else: empty).
fn parse_string_array(val: &str) -> Vec<String> {
    let inner = val.trim().trim_start_matches('[').trim_end_matches(']');
    inner
        .split(',')
        .map(|s| s.trim().trim_matches('"').to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// Pulls `path = "…"` out of an inline table.
fn extract_path(val: &str) -> Option<String> {
    let pos = val.find("path")?;
    let rest = &val[pos + 4..];
    let rest = rest.trim_start().strip_prefix('=')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn unquote(v: &str) -> String {
    v.trim().trim_matches('"').to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_features_deps_and_workspace_paths() {
        let m = parse_str(
            r#"
[package]
name = "demo"

[features]
default = ["parallel", "simd"] # with a comment
simd = [
    "bonsai-core/simd",
    "bonsai-kdtree/simd",
]
chaos = []

[workspace]
members = [
    "crates/core",
    "crates/kdtree",
]

[dependencies]
bonsai-core.workspace = true
rand = { path = "crates/shims/rand" }

[workspace.dependencies]
bonsai-core = { path = "crates/core" }
"#,
        );
        assert_eq!(m.name, "demo");
        assert_eq!(
            m.feature_entries("simd").unwrap(),
            ["bonsai-core/simd", "bonsai-kdtree/simd"]
        );
        assert_eq!(m.feature_entries("chaos").unwrap(), [] as [&str; 0]);
        assert!(m.has_feature("default"));
        assert_eq!(m.deps, ["bonsai-core", "rand"]);
        assert_eq!(m.members, ["crates/core", "crates/kdtree"]);
        assert_eq!(
            m.workspace_dep_paths.get("bonsai-core").unwrap(),
            &PathBuf::from("crates/core")
        );
    }
}
