//! The call-graph dataflow rules: guard-dataflow and
//! typed-error-discipline.
//!
//! guard-dataflow replaces the PR 7 name-pattern guard-coverage rule
//! (and its `GUARD_ALLOWLIST`): instead of pattern-matching "calls
//! something that sounds guarded", an entry point is guarded iff it
//! **transitively reaches** one of the degenerate-input guards —
//! `radius_is_searchable`, `query_is_searchable` or `is_finite` —
//! through the workspace call graph, with `#[cfg(test)]`-only callees
//! excluded. Exemptions are per-site justified allows in the tree,
//! where reviewers see them.

use std::collections::BTreeSet;
use std::path::Path;

use crate::callgraph::CallGraph;
use crate::lexer::Lexed;
use crate::rules::{is_entry_point_name, Diagnostic, FilePolicy, Rule};
use crate::symbols::{FileSymbols, Visibility};

/// The degenerate-input guards an entry point must reach.
pub const GUARD_FNS: &[&str] = &["radius_is_searchable", "query_is_searchable", "is_finite"];

/// Error types that are never acceptable on a public fallible serving
/// API (by final path segment).
const STRINGLY: &[&str] = &["String", "str"];

/// guard-dataflow over one file (`file_idx` into the graph's index).
#[allow(clippy::too_many_arguments)]
pub fn check_guard_dataflow(
    path: &Path,
    symbols: &FileSymbols,
    graph: &CallGraph,
    file_idx: usize,
    policy: FilePolicy,
    allowed: &dyn Fn(Rule, u32) -> bool,
    diags: &mut Vec<Diagnostic>,
) {
    if !policy.guard_surface {
        return;
    }
    let is_guard = |n: &str| GUARD_FNS.contains(&n);
    for (fi, f) in symbols.fns.iter().enumerate() {
        // Plain `pub fn` only: `pub(crate)`/`pub(super)` helpers are
        // internal and pre-guarded by their public callers.
        if f.vis != Visibility::Pub
            || f.is_test
            || !is_entry_point_name(&f.name)
            || allowed(Rule::GuardDataflow, f.sig_line)
        {
            continue;
        }
        let node = graph.index[file_idx][fi];
        if graph.reaches(node, &is_guard) {
            continue;
        }
        diags.push(Diagnostic {
            file: path.to_path_buf(),
            line: f.sig_line,
            rule: Rule::GuardDataflow,
            message: format!(
                "entry point `pub fn {}` never reaches a degenerate-input guard \
                 (`radius_is_searchable`/`query_is_searchable`/`is_finite`) through the \
                 call graph — guard it, delegate to a guarded function, or add a \
                 justified `// lint: allow(guard-dataflow)`",
                f.name
            ),
        });
    }
}

/// typed-error-discipline over one file: public `try_*` APIs must
/// return `Result<_, E>` with `E` a workspace-defined error enum, and
/// no public fallible API may error with `String`/`&str`/`Box<dyn …>`.
pub fn check_typed_errors(
    path: &Path,
    lexed: &Lexed,
    symbols: &FileSymbols,
    enums: &BTreeSet<String>,
    policy: FilePolicy,
    allowed: &dyn Fn(Rule, u32) -> bool,
    diags: &mut Vec<Diagnostic>,
) {
    if !policy.typed_errors {
        return;
    }
    for f in &symbols.fns {
        if f.vis != Visibility::Pub || f.is_test || allowed(Rule::TypedErrorDiscipline, f.sig_line)
        {
            continue;
        }
        let is_try = f.name.starts_with("try_");
        let err = f.ret.and_then(|r| error_type(lexed, r));
        match (is_try, err) {
            (true, None) => {
                // `try_*` that does not return Result at all (bare
                // value or Option).
                let what = f
                    .ret
                    .map(|(a, b)| {
                        if lexed.tokens[a..b].iter().any(|t| t.is_ident("Option")) {
                            "`Option` hides *why* the call failed"
                        } else {
                            "an infallible return type contradicts the name"
                        }
                    })
                    .unwrap_or("an infallible return type contradicts the name");
                diags.push(Diagnostic {
                    file: path.to_path_buf(),
                    line: f.sig_line,
                    rule: Rule::TypedErrorDiscipline,
                    message: format!(
                        "public `pub fn {}` is a `try_*` API but does not return \
                         `Result<_, E>` with a workspace error enum — {what}; return a \
                         typed error or justify with an allow",
                        f.name
                    ),
                });
            }
            (true, Some(err)) => {
                if STRINGLY.contains(&err.as_str()) || err == "Box" {
                    diags.push(stringly(path, f.sig_line, &f.name, &err));
                } else if !enums.contains(&err) {
                    diags.push(Diagnostic {
                        file: path.to_path_buf(),
                        line: f.sig_line,
                        rule: Rule::TypedErrorDiscipline,
                        message: format!(
                            "public `pub fn {}` errors with `{err}`, which is not a \
                             workspace-defined error enum — serving callers match on \
                             typed variants, not foreign or opaque errors",
                            f.name
                        ),
                    });
                }
            }
            (false, Some(err)) => {
                // Non-`try_` fallible APIs only have to avoid stringly
                // errors; foreign typed errors (`io::Error` on report
                // writers) are legitimate.
                if STRINGLY.contains(&err.as_str()) || err == "Box" {
                    diags.push(stringly(path, f.sig_line, &f.name, &err));
                }
            }
            (false, None) => {}
        }
    }
}

fn stringly(path: &Path, line: u32, name: &str, err: &str) -> Diagnostic {
    let shown = if err == "Box" { "Box<dyn …>" } else { err };
    Diagnostic {
        file: path.to_path_buf(),
        line,
        rule: Rule::TypedErrorDiscipline,
        message: format!(
            "public `pub fn {name}` errors with `{shown}` — serving APIs return a \
             workspace-defined error enum (`QueryError`/`ServeError`/`PipelineError`), \
             never stringly or type-erased errors"
        ),
    }
}

/// The error type of a `Result<…>` return type, by final path segment
/// of the last top-level generic argument. `Box<…>` collapses to
/// `"Box"`. `None` when the return type has no `Result`.
fn error_type(lexed: &Lexed, ret: (usize, usize)) -> Option<String> {
    let toks = &lexed.tokens[ret.0..ret.1];
    let r = toks.iter().position(|t| t.is_ident("Result"))?;
    let mut i = r + 1;
    if !toks.get(i).is_some_and(|t| t.is_punct(b'<')) {
        return None; // bare `Result` alias — cannot judge
    }
    i += 1;
    let mut depth = 1i32;
    let mut last_arg_start = i;
    let mut end = toks.len();
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            crate::lexer::TokKind::Punct(b'<') => depth += 1,
            // The `>` of `->` (fn-pointer types inside generics) does
            // not close an angle bracket.
            crate::lexer::TokKind::Punct(b'>') if !toks[i - 1].is_punct(b'-') => {
                depth -= 1;
                if depth == 0 {
                    end = i;
                    break;
                }
            }
            crate::lexer::TokKind::Punct(b',') if depth == 1 => last_arg_start = i + 1,
            _ => {}
        }
        i += 1;
    }
    // Final path segment of the error argument: the ident chain up to
    // the first `<` / end, skipping references and lifetimes.
    let seg = &toks[last_arg_start..end];
    let mut last_ident: Option<&str> = None;
    for t in seg {
        match t.kind {
            crate::lexer::TokKind::Ident if t.text == "dyn" => continue,
            crate::lexer::TokKind::Ident => {
                last_ident = Some(&t.text);
                if t.text == "Box" {
                    break; // `Box<dyn Error>` — the box is the verdict
                }
            }
            crate::lexer::TokKind::Punct(b':') | crate::lexer::TokKind::Punct(b'&') => continue,
            crate::lexer::TokKind::Lifetime => continue,
            crate::lexer::TokKind::Punct(b'<') => break,
            _ => continue,
        }
    }
    last_ident.map(str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_file;
    use crate::rules::FilePolicy;

    const GUARD: FilePolicy = FilePolicy {
        panic_free: false,
        hot_path: false,
        guard_surface: true,
        concurrency: false,
        atomic_counters: false,
        cow_home: false,
        typed_errors: false,
    };

    const TYPED: FilePolicy = FilePolicy {
        guard_surface: false,
        typed_errors: true,
        ..GUARD
    };

    fn check(src: &str, policy: FilePolicy) -> Vec<(Rule, u32)> {
        check_file(Path::new("mem.rs"), src, policy)
            .iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn unguarded_entry_point_flagged_guarded_passes() {
        let bad =
            "impl T {\n    pub fn radius_search(&self, r: f32) -> Vec<u32> { self.walk(r) }\n}\n";
        assert_eq!(check(bad, GUARD), [(Rule::GuardDataflow, 2)]);

        let guarded = "impl T {\n    pub fn radius_search(&self, r: f32) -> Vec<u32> {\n        \
            if !radius_is_searchable(r) { return Vec::new(); }\n        self.walk(r)\n    }\n}\n";
        assert!(check(guarded, GUARD).is_empty());
    }

    #[test]
    fn transitive_delegation_discharges_the_guard() {
        // nearest → knn → helper → query_is_searchable: three hops.
        let src = "impl T {\n    pub fn nearest(&self, q: P) -> Option<u32> { self.knn(q, 1).pop() }\n    pub fn knn(&self, q: P, k: usize) -> Vec<u32> { self.checked(q, k) }\n    fn checked(&self, q: P, k: usize) -> Vec<u32> {\n        if !query_is_searchable(q) { return Vec::new(); }\n        self.walk(q, k)\n    }\n}\n";
        assert!(check(src, GUARD).is_empty(), "{:?}", check(src, GUARD));
    }

    #[test]
    fn delegation_to_an_unguarded_sink_is_not_enough() {
        // Under the retired name-pattern rule, calling anything with
        // "radius" in the name passed; dataflow requires the chain to
        // actually end at a guard.
        let src = "impl T {\n    pub fn radius_search(&self, r: f32) -> Vec<u32> { self.radius_inner(r) }\n    fn radius_inner(&self, r: f32) -> Vec<u32> { self.walk(r) }\n}\n";
        assert_eq!(check(src, GUARD), [(Rule::GuardDataflow, 2)]);
    }

    #[test]
    fn fn_level_allow_covers_entry_points() {
        let with_allow = "impl T {\n    \
            // lint: allow(guard-dataflow) — idx is bounds-checked by the caller contract.\n    \
            pub fn delete(&mut self, idx: u32) -> bool { self.kill(idx) }\n}\n";
        assert!(check(with_allow, GUARD).is_empty());
    }

    #[test]
    fn non_pub_and_non_entry_names_are_ignored() {
        let src = "fn insert(x: u32) {}\npub(crate) fn delete(x: u32) {}\n\
                   pub fn rebuild_all(&mut self) { self.x(); }\n";
        assert!(check(src, GUARD).is_empty());
    }

    #[test]
    fn try_apis_need_workspace_error_enums() {
        let good = "pub enum QueryError { Stale }\nimpl T {\n    pub fn try_search(&self) -> Result<u32, QueryError> { Ok(1) }\n}\n";
        assert!(check(good, TYPED).is_empty());

        let option = "impl T {\n    pub fn try_take(&self) -> Option<u32> { None }\n}\n";
        assert_eq!(check(option, TYPED), [(Rule::TypedErrorDiscipline, 2)]);

        let foreign =
            "impl T {\n    pub fn try_read(&self) -> Result<u32, std::io::Error> { Ok(1) }\n}\n";
        assert_eq!(check(foreign, TYPED), [(Rule::TypedErrorDiscipline, 2)]);
    }

    #[test]
    fn stringly_errors_are_flagged_on_any_pub_fallible_api() {
        let stringly = "impl T {\n    pub fn commit(&self) -> Result<(), String> { Ok(()) }\n}\n";
        assert_eq!(check(stringly, TYPED), [(Rule::TypedErrorDiscipline, 2)]);
        let boxed = "impl T {\n    pub fn commit(&self) -> Result<(), Box<dyn std::error::Error>> { Ok(()) }\n}\n";
        assert_eq!(check(boxed, TYPED), [(Rule::TypedErrorDiscipline, 2)]);
        // Foreign typed errors on non-try APIs are legitimate
        // (io::Error on report writers).
        let io = "impl T {\n    pub fn write_report(&self) -> Result<(), std::io::Error> { Ok(()) }\n}\n";
        assert!(check(io, TYPED).is_empty());
        // Nested generics in the Ok position don't confuse the error
        // argument extraction.
        let nested = "pub enum ServeError { Busy }\nimpl T {\n    pub fn drain(&self) -> Result<Vec<(u32, f32)>, ServeError> { Ok(Vec::new()) }\n}\n";
        assert!(check(nested, TYPED).is_empty());
    }
}
