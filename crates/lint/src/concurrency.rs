//! The concurrency-discipline rules: atomic-ordering-discipline,
//! cow-discipline and epoch-pin-balance.
//!
//! PRs 8–9 made the serving core's correctness rest on conventions no
//! syntactic rule can see: relaxed atomics are *only* load-accounting
//! counters, copy-on-write shard mutation happens *only* behind the
//! dirty gate, and a pinned epoch is only a snapshot while somebody
//! holds it. These checks read the same token stream as the line
//! rules but lean on the symbol table for function extents.

use std::path::Path;

use crate::lexer::{Comment, Lexed, TokKind};
use crate::rules::{comment_covers, in_regions, Diagnostic, FilePolicy, Regions, Rule};
use crate::symbols::FileSymbols;

/// The memory-ordering variants of `std::sync::atomic::Ordering`.
/// (`cmp::Ordering`'s variants — `Less`/`Equal`/`Greater` — never
/// match, so comparison code is naturally out of scope.)
const MEMORY_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Functions that pin an epoch snapshot. `pin` is the publisher's
/// actual method; `pin_epoch`/`try_pin_epoch` are the spec names the
/// convention is written against.
const PIN_NAMES: &[&str] = &["pin", "pin_epoch", "try_pin_epoch"];

/// atomic-ordering-discipline: every `Ordering::<variant>` use must be
/// `Relaxed` inside an allowlisted counter module, or carry a
/// `// HB:` comment naming its Acquire/Release partner site.
#[allow(clippy::too_many_arguments)] // the shared per-file analysis state, passed flat like the sibling rules
pub fn check_atomic_ordering(
    path: &Path,
    lexed: &Lexed,
    symbols: &FileSymbols,
    test_regions: &Regions,
    attr_lines: &Regions,
    policy: FilePolicy,
    allowed: &dyn Fn(Rule, u32) -> bool,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    let is_hb = |c: &Comment| c.text.contains("HB:");
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("Ordering")
            || !toks.get(i + 1).is_some_and(|n| n.is_punct(b':'))
            || !toks.get(i + 2).is_some_and(|n| n.is_punct(b':'))
        {
            continue;
        }
        let Some(ord) = toks.get(i + 3) else { continue };
        if ord.kind != TokKind::Ident || !MEMORY_ORDERINGS.contains(&ord.text.as_str()) {
            continue;
        }
        let line = ord.line;
        if symbols.in_use(i)
            || in_regions(test_regions, line)
            || allowed(Rule::AtomicOrderingDiscipline, line)
        {
            continue;
        }
        if ord.text == "Relaxed" && policy.atomic_counters {
            continue;
        }
        if comment_covers(lexed, attr_lines, line, &is_hb) {
            continue;
        }
        let message = if ord.text == "Relaxed" {
            "`Ordering::Relaxed` outside an allowlisted counter module: either this is \
             load accounting (move it to a counter module / extend ATOMIC_COUNTER_MODULES \
             in bonsai-lint) or it participates in synchronization and needs a `// HB:` \
             comment naming the happens-before edge it forgoes"
                .to_string()
        } else {
            format!(
                "`Ordering::{}` without a `// HB:` comment naming its Acquire/Release \
                 partner site — document the happens-before edge this ordering creates",
                ord.text
            )
        };
        diags.push(Diagnostic {
            file: path.to_path_buf(),
            line,
            rule: Rule::AtomicOrderingDiscipline,
            message,
        });
    }
}

/// cow-discipline: `Arc::make_mut` only inside the sanctioned
/// copy-on-write home (`core/src/shard.rs`), and there only in
/// functions that consult the dirty gate (`has_dirty_nodes`) at an
/// earlier point of the same body.
pub fn check_cow(
    path: &Path,
    lexed: &Lexed,
    symbols: &FileSymbols,
    test_regions: &Regions,
    policy: FilePolicy,
    allowed: &dyn Fn(Rule, u32) -> bool,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("make_mut") || !toks.get(i + 1).is_some_and(|n| n.is_punct(b'(')) {
            continue;
        }
        let line = t.line;
        if in_regions(test_regions, line) || allowed(Rule::CowDiscipline, line) {
            continue;
        }
        if !policy.cow_home {
            diags.push(Diagnostic {
                file: path.to_path_buf(),
                line,
                rule: Rule::CowDiscipline,
                message: "`Arc::make_mut` outside the copy-on-write home \
                          (`core/src/shard.rs`): shard snapshots are cloned only on the \
                          commit path behind the dirty gate — route the mutation through \
                          the shard API or justify with an allow"
                    .to_string(),
            });
            continue;
        }
        // In the cow home: the enclosing fn must have consulted the
        // dirty gate before reaching for make_mut.
        let gated = symbols.enclosing_fn(i).is_some_and(|f| {
            let (a, _) = f.body.unwrap_or((i, i));
            toks[a..i].iter().enumerate().any(|(off, g)| {
                g.is_ident("has_dirty_nodes")
                    && toks.get(a + off + 1).is_some_and(|n| n.is_punct(b'('))
            })
        });
        if !gated {
            diags.push(Diagnostic {
                file: path.to_path_buf(),
                line,
                rule: Rule::CowDiscipline,
                message: "`Arc::make_mut` without consulting the dirty gate \
                          (`has_dirty_nodes`) earlier in the same function: cloning a \
                          shard that still carries uncommitted dirt either loses the \
                          dirt or copies it needlessly — gate the clone or justify with \
                          an allow"
                    .to_string(),
            });
        }
    }
}

/// epoch-pin-balance: the result of `pin`/`pin_epoch`/`try_pin_epoch`
/// must flow into a binding, a return value, an argument, or a tail
/// expression — never be dropped in the statement that pinned it
/// (`publisher.pin();` holds the snapshot for zero instructions and
/// then retires it, which is always a bug or dead code).
pub fn check_pin_balance(
    path: &Path,
    lexed: &Lexed,
    symbols: &FileSymbols,
    test_regions: &Regions,
    allowed: &dyn Fn(Rule, u32) -> bool,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident
            || !PIN_NAMES.contains(&t.text.as_str())
            || !toks.get(i + 1).is_some_and(|n| n.is_punct(b'('))
            || (i > 0 && toks[i - 1].is_ident("fn"))
        {
            continue;
        }
        let line = t.line;
        if symbols.in_use(i)
            || in_regions(test_regions, line)
            || allowed(Rule::EpochPinBalance, line)
        {
            continue;
        }
        if pin_flows(toks, i) {
            continue;
        }
        diags.push(Diagnostic {
            file: path.to_path_buf(),
            line,
            rule: Rule::EpochPinBalance,
            message: format!(
                "the epoch pinned by `{}()` is dropped in the same statement — bind it \
                 (`let epoch = …`), return it, or pass it on; a pin nobody holds \
                 snapshots nothing",
                t.text
            ),
        });
    }
}

/// Whether the pin call at token `i` flows somewhere. Backward: a `=`
/// (covers `let x =` and `=>` match arms), a `let`/`return`, or an
/// enclosing call/index/list position (`(`/`[`/`,`) before the
/// statement boundary means the value is consumed. Forward: a
/// statement that ends at a closing `}` instead of `;` is a tail
/// expression. `drop(…pin())` is explicitly a non-flow.
fn pin_flows(toks: &[crate::lexer::Token], i: usize) -> bool {
    // Backward scan to the statement boundary.
    let mut depth = 0i32;
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        match t.kind {
            TokKind::Punct(b')') | TokKind::Punct(b']') => depth += 1,
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => {
                if depth > 0 {
                    depth -= 1;
                } else {
                    // Argument position: consumed by the enclosing
                    // call — unless that call is `drop`.
                    return !(j > 0 && toks[j - 1].is_ident("drop"));
                }
            }
            TokKind::Punct(b',') if depth == 0 => return true, // list/arg element
            TokKind::Punct(b'=') if depth == 0 => return true, // binding or match arm
            TokKind::Ident if depth == 0 && (t.text == "let" || t.text == "return") => {
                return true;
            }
            TokKind::Punct(b'{') | TokKind::Punct(b'}') | TokKind::Punct(b';') if depth == 0 => {
                break; // statement boundary with nothing binding so far
            }
            _ => {}
        }
    }
    // Forward: skip the call's argument list, then look for the
    // statement end. `}` before `;` means tail expression.
    let mut k = i + 1;
    let mut d = 0i32;
    while k < toks.len() {
        match toks[k].kind {
            TokKind::Punct(b'(') => {
                d += 1;
            }
            TokKind::Punct(b')') => {
                d -= 1;
                if d == 0 {
                    k += 1;
                    break;
                }
            }
            _ => {}
        }
        k += 1;
    }
    let mut fd = 0i32;
    while k < toks.len() {
        match toks[k].kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') | TokKind::Punct(b'{') => fd += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') | TokKind::Punct(b'}') => {
                if fd == 0 {
                    return true; // tail expression / last arm
                }
                fd -= 1;
            }
            TokKind::Punct(b',') if fd == 0 => return true,
            TokKind::Punct(b';') if fd == 0 => return false, // dropped
            _ => {}
        }
        k += 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_file;
    use std::path::Path;

    const CONC: FilePolicy = FilePolicy {
        panic_free: false,
        hot_path: false,
        guard_surface: false,
        concurrency: true,
        atomic_counters: false,
        cow_home: false,
        typed_errors: false,
    };

    fn check(src: &str, policy: FilePolicy) -> Vec<(Rule, u32)> {
        check_file(Path::new("mem.rs"), src, policy)
            .iter()
            .map(|d| (d.rule, d.line))
            .collect()
    }

    #[test]
    fn relaxed_needs_counter_module_or_hb() {
        let bad = "fn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert_eq!(check(bad, CONC), [(Rule::AtomicOrderingDiscipline, 1)]);
        assert!(
            check(
                bad,
                FilePolicy {
                    atomic_counters: true,
                    ..CONC
                }
            )
            .is_empty(),
            "counter modules sanction Relaxed"
        );
        let hb = "fn f(c: &AtomicU64) {\n    // HB: pairs with the Acquire in reader().\n    c.store(1, Ordering::Relaxed);\n}\n";
        assert!(check(hb, CONC).is_empty());
    }

    #[test]
    fn acquire_release_need_hb_partners() {
        let bad = "fn f(c: &AtomicU64) { c.load(Ordering::Acquire); }\n";
        assert_eq!(check(bad, CONC), [(Rule::AtomicOrderingDiscipline, 1)]);
        let good = "fn f(c: &AtomicU64) {\n    c.load(Ordering::Acquire) // HB: pairs with the Release store in publish().\n}\n";
        assert!(check(good, CONC).is_empty(), "{:?}", check(good, CONC));
        // Counter allowlisting does NOT excuse Acquire.
        assert_eq!(
            check(
                bad,
                FilePolicy {
                    atomic_counters: true,
                    ..CONC
                }
            ),
            [(Rule::AtomicOrderingDiscipline, 1)]
        );
    }

    #[test]
    fn cmp_ordering_and_imports_are_out_of_scope() {
        let src = "use std::sync::atomic::Ordering;\nfn f(a: u32, b: u32) -> Ordering { if a < b { Ordering::Less } else { Ordering::Greater } }\n";
        assert!(check(src, CONC).is_empty());
    }

    #[test]
    fn make_mut_outside_the_cow_home_is_flagged() {
        let src = "fn f(a: &mut Arc<V>) { Arc::make_mut(a).push(1); }\n";
        assert_eq!(check(src, CONC), [(Rule::CowDiscipline, 1)]);
    }

    #[test]
    fn cow_home_requires_the_dirty_gate_first() {
        let home = FilePolicy {
            cow_home: true,
            ..CONC
        };
        let ungated = "fn commit(a: &mut Arc<V>) {\n    Arc::make_mut(a).push(1);\n}\n";
        assert_eq!(check(ungated, home), [(Rule::CowDiscipline, 2)]);
        let gated = "fn commit(a: &mut Arc<V>) {\n    if !a.tree.has_dirty_nodes() { return; }\n    Arc::make_mut(a).push(1);\n}\n";
        assert!(check(gated, home).is_empty());
    }

    #[test]
    fn pin_must_flow_into_a_binding_return_or_tail() {
        let dropped = "fn f(p: &Publisher) {\n    p.pin();\n}\n";
        assert_eq!(check(dropped, CONC), [(Rule::EpochPinBalance, 2)]);
        let explicit_drop = "fn f(p: &Publisher) {\n    drop(p.pin());\n}\n";
        assert_eq!(check(explicit_drop, CONC), [(Rule::EpochPinBalance, 2)]);

        for good in [
            "fn f(p: &Publisher) {\n    let epoch = p.pin();\n    epoch.search();\n}\n",
            "fn f(p: &Publisher) -> Epoch {\n    return p.try_pin_epoch(3);\n}\n",
            "fn f(p: &Publisher) -> Epoch {\n    p.pin()\n}\n",
            "fn f(p: &Publisher) {\n    serve(p.pin_epoch());\n}\n",
            "fn f(p: &Publisher) -> Epoch {\n    match x {\n        A => p.pin(),\n        B => q,\n    }\n}\n",
            "fn f(p: &Publisher) {\n    let e = p.try_pin_epoch(2)?;\n    e.go();\n}\n",
        ] {
            assert!(check(good, CONC).is_empty(), "{good}");
        }

        // `fn pin(` definitions are not callsites.
        let def = "impl P {\n    pub fn pin(&self) -> Epoch { self.snap() }\n}\n";
        assert!(check(def, CONC).is_empty());
    }

    #[test]
    fn dropped_pin_behind_question_mark_is_still_dropped() {
        let src =
            "fn f(p: &Publisher) -> Result<(), E> {\n    p.try_pin_epoch(1)?;\n    Ok(())\n}\n";
        assert_eq!(check(src, CONC), [(Rule::EpochPinBalance, 2)]);
    }
}
