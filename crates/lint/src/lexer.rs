//! A minimal Rust lexer — just enough syntax awareness for the
//! repo-invariant lints.
//!
//! The workspace is offline (no `syn`, no `rustc` driver), so the
//! rules run over a hand-rolled token stream instead of an AST. The
//! lexer understands exactly the constructs that would otherwise
//! produce false positives in a regex scan:
//!
//! * line (`//`, `///`, `//!`) and nested block comments, kept as a
//!   **separate comment stream** (the `SAFETY:` and `lint: allow`
//!   conventions live there),
//! * string / raw-string / byte-string / char literals (an `unwrap()`
//!   inside a format string is not a call),
//! * lifetimes vs. char literals (`'a` vs. `'a'`),
//! * identifiers, numbers and single-byte punctuation, each tagged
//!   with its 1-based line.
//!
//! Anything fancier (macro expansion, type resolution) is out of
//! scope by design: the lints are conventions over source text, and
//! the conventions are written so token-level evidence decides them.

/// What a code token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the lexer does not distinguish).
    Ident,
    /// A lifetime (`'a`) — kept distinct so quote handling stays sane.
    Lifetime,
    /// Numeric literal.
    Num,
    /// String, raw-string or byte-string literal.
    Str,
    /// Char or byte-char literal.
    Char,
    /// One byte of punctuation (`.`, `!`, `{`, …).
    Punct(u8),
}

/// One code token: kind, source text and 1-based line.
#[derive(Debug, Clone)]
pub struct Token {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Token {
    /// Whether this is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }

    /// Whether this is the punctuation byte `b`.
    pub fn is_punct(&self, b: u8) -> bool {
        self.kind == TokKind::Punct(b)
    }
}

/// One comment: its text (markers included), line span, and whether it
/// had code before it on its first line (a *trailing* comment).
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    pub end_line: u32,
    pub trailing: bool,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

impl Lexed {
    /// The first code-token line strictly after `line`, if any — where
    /// an own-line comment's subject lives.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        self.tokens.iter().map(|t| t.line).find(|&l| l > line)
    }
}

/// Lexes `src`. Unterminated constructs are tolerated (consumed to end
/// of input) — the lints must never panic on weird-but-compiling code,
/// and fixture snippets need not be complete files.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;
    // Whether any code token has been produced on the current line
    // (decides comment trailing-ness).
    let mut code_on_line = false;

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                code_on_line = false;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment {
                    text: src[start..i].to_string(),
                    line,
                    end_line: line,
                    trailing: code_on_line,
                });
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment {
                    text: src[start..i.min(src.len())].to_string(),
                    line: start_line,
                    end_line: line,
                    trailing: code_on_line,
                });
            }
            b'"' => {
                let start = i;
                let start_line = line;
                let (tok, nl) = lex_string(src, i, line);
                i = tok;
                line = nl;
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: src[start..i.min(src.len())].to_string(),
                    line: start_line,
                });
                code_on_line = true;
            }
            b'r' | b'b' if raw_string_start(b, i).is_some() => {
                let hashes = raw_string_start(b, i).unwrap_or(0);
                let start = i;
                let start_line = line;
                // Skip prefix (r / br / rb / b), hashes, opening quote.
                while i < b.len() && b[i] != b'"' {
                    i += 1;
                }
                i += 1;
                let closer = format!("\"{}", "#".repeat(hashes));
                let rest = &src[i.min(src.len())..];
                let end = rest
                    .find(&closer)
                    .map(|p| p + closer.len())
                    .unwrap_or(rest.len());
                line += rest[..end.min(rest.len())].matches('\n').count() as u32;
                i += end;
                out.tokens.push(Token {
                    kind: TokKind::Str,
                    text: src[start..i.min(src.len())].to_string(),
                    line: start_line,
                });
                code_on_line = true;
            }
            b'\'' => {
                // Char literal or lifetime.
                let is_char = if i + 1 >= b.len() {
                    false
                } else if b[i + 1] == b'\\' {
                    true
                } else {
                    // 'x' is a char literal; 'x followed by anything
                    // else is a lifetime. Multi-byte UTF-8 scalars are
                    // char literals too ('·') — detect by the closing
                    // quote before the next ident boundary.
                    let mut j = i + 1;
                    while j < b.len() && b[j] != b'\'' && b[j] != b'\n' && j < i + 8 {
                        j += 1;
                    }
                    j < b.len() && b[j] == b'\'' && j > i + 1
                };
                if is_char {
                    i += 1;
                    if i < b.len() && b[i] == b'\\' {
                        i += 2; // skip escape lead
                                // Consume to the closing quote.
                        while i < b.len() && b[i] != b'\'' {
                            i += 1;
                        }
                    } else {
                        while i < b.len() && b[i] != b'\'' {
                            i += 1;
                        }
                    }
                    i += 1;
                    out.tokens.push(Token {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                } else {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                }
                code_on_line = true;
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Ident,
                    text: src[start..i].to_string(),
                    line,
                });
                code_on_line = true;
            }
            c if c.is_ascii_digit() => {
                while i < b.len()
                    && (b[i] == b'_'
                        || b[i] == b'.'
                        || b[i].is_ascii_alphanumeric()
                        || ((b[i] == b'+' || b[i] == b'-') && matches!(b[i - 1], b'e' | b'E')))
                {
                    // `1..10` is two dots of a range, not a float tail.
                    if b[i] == b'.' && i + 1 < b.len() && b[i + 1] == b'.' {
                        break;
                    }
                    i += 1;
                }
                out.tokens.push(Token {
                    kind: TokKind::Num,
                    text: String::new(),
                    line,
                });
                code_on_line = true;
            }
            c => {
                out.tokens.push(Token {
                    kind: TokKind::Punct(c),
                    text: (c as char).to_string(),
                    line,
                });
                code_on_line = true;
                i += 1;
            }
        }
    }
    out
}

/// If position `i` starts a raw/byte string prefix (`r"`, `r#"`,
/// `br"`, `b"` …), returns the number of `#`s; `None` when `i` is an
/// ordinary identifier starting with `r`/`b`.
fn raw_string_start(b: &[u8], i: usize) -> Option<usize> {
    let mut j = i;
    // Up to two prefix letters (r, b, br, rb).
    let mut letters = 0;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') && letters < 2 {
        j += 1;
        letters += 1;
    }
    let mut hashes = 0usize;
    while j < b.len() && b[j] == b'#' {
        j += 1;
        hashes += 1;
    }
    if j < b.len() && b[j] == b'"' {
        // Plain b"..." has no hashes and no r — still a string prefix.
        // A bare identifier like `ra` fails the quote check above.
        if hashes > 0 || letters > 0 {
            return Some(hashes);
        }
    }
    None
}

/// Consumes a `"…"` string starting at `i` (which must be the opening
/// quote); returns (next index, updated line).
fn lex_string(src: &str, i: usize, mut line: u32) -> (usize, u32) {
    let b = src.as_bytes();
    let mut j = i + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return (j + 1, line),
            b'\n' => {
                line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (j, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_do_not_produce_code_tokens() {
        let lx = lex(r##"
// a comment with unwrap() in it
let s = "panic!(\"no\")"; // trailing
let r = r#"unwrap()"#;
/* block
   with .expect( */
let c = 'x';
let lt: &'static str = "s";
"##);
        assert!(!lx.tokens.iter().any(|t| t.is_ident("unwrap")));
        assert!(!lx.tokens.iter().any(|t| t.is_ident("panic")));
        assert!(!lx.tokens.iter().any(|t| t.is_ident("expect")));
        assert_eq!(lx.comments.len(), 3);
        assert!(lx.comments[1].trailing);
        assert!(!lx.comments[0].trailing);
        assert!(lx.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(lx.tokens.iter().any(|t| t.kind == TokKind::Char));
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let lx = lex("let a = \"x\ny\";\nunsafe {\n}");
        let uns = lx.tokens.iter().find(|t| t.is_ident("unsafe")).unwrap();
        assert_eq!(uns.line, 3);
    }

    #[test]
    fn nested_block_comments_terminate_correctly() {
        let lx = lex("/* outer /* inner */ still comment */ code");
        assert_eq!(lx.comments.len(), 1);
        assert!(lx.tokens.iter().any(|t| t.is_ident("code")));
    }

    #[test]
    fn numeric_literals_consume_hex_and_exponents() {
        let lx = lex("let x = 0x7FFF_FFFF; let y = 1.5e-3; let r = 1..8;");
        assert!(lx.tokens.iter().any(|t| t.is_ident("let")));
        // The range `1..8` must not swallow the dots.
        assert!(lx.tokens.iter().filter(|t| t.is_punct(b'.')).count() >= 2);
    }
}
