#![forbid(unsafe_code)]
//! `bonsai-serve`: the asynchronous serving front-end over
//! epoch-published index snapshots.
//!
//! The production pattern this crate serves ("Learning to Localize
//! Through Compressed Binary Maps" — many concurrent localization
//! clients querying one compressed map) needs three things the
//! synchronous engines don't provide:
//!
//! 1. **Request absorption.** Many concurrent clients each submit one
//!    radius query; a single executor thread drains the queue and
//!    absorbs up to [`ServeConfig::max_batch`] waiting requests into
//!    one order-preserving [`QueryBatch`] per wakeup, so steady-state
//!    serving pays the engine's batched amortization (shared scratch,
//!    one backend dispatch per sweep) instead of per-call setup.
//! 2. **Admission control.** The queue is bounded
//!    ([`ServeConfig::queue_capacity`]); a submit past capacity is
//!    rejected *immediately* with the typed
//!    [`ServeError::Overloaded`] — backpressure the caller can act on,
//!    consistent with the workspace's `Result` serving boundary —
//!    rather than queued into unbounded latency.
//! 3. **Snapshot isolation.** The executor pins the current
//!    [`Epoch`](bonsai_core::Epoch) before absorbing a batch, so every
//!    request in that batch is answered against one immutable snapshot
//!    — bit-identical to a stop-the-world engine at that epoch — while
//!    the ingest side keeps committing and publishing new epochs
//!    concurrently. Each [`QueryResult`] reports the epoch that
//!    answered it.
//!
//! Anything `Send + Sync` that can append radius hits can be served:
//! the [`EpochIndex`] trait is implemented for
//! [`RouterSnapshot`] (the sharded streaming index) and the
//! `Arc`-owning [`RadiusSearchEngine`] (single tree, all three
//! modes).
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//!
//! use bonsai_core::{EpochPublisher, ShardConfig, ShardRouter};
//! use bonsai_geom::Point3;
//! use bonsai_kdtree::KdTreeConfig;
//! use bonsai_serve::{ServeConfig, Server};
//!
//! let cloud: Vec<Point3> =
//!     (0..400).map(|i| Point3::new((i % 20) as f32 * 0.3, (i / 20) as f32 * 0.3, 1.0)).collect();
//! let mut router =
//!     ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(4));
//!
//! let publisher = Arc::new(EpochPublisher::new(router.snapshot()));
//! let server = Server::new(Arc::clone(&publisher), ServeConfig::default());
//!
//! // Clients submit concurrently; the executor batches and answers.
//! let ticket = server.submit(cloud[0], 0.5).expect("queue has room");
//!
//! // Meanwhile ingest keeps mutating and publishing — served queries
//! // are isolated on the epoch they were absorbed under.
//! router.apply_update(&[Point3::new(50.0, 50.0, 1.0)], &[]);
//! publisher.publish(router.snapshot());
//!
//! let result = ticket.wait().expect("query served");
//! assert!(result.neighbors.iter().any(|n| n.index == 0));
//! ```

use std::collections::VecDeque;
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread;

use bonsai_core::{AdaptReport, EpochPublisher, QueryError, RadiusSearchEngine, RouterSnapshot};
use bonsai_geom::Point3;
use bonsai_kdtree::{Neighbor, QueryBatch, SearchScratch, SearchStats};

/// Lock with poison recovery: every critical section in this crate
/// leaves the guarded state consistent at each await point (complete
/// queue pushes/drains, complete slot assignments), so a panicking
/// peer thread never leaves a torn value behind.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Knobs of the serving executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeConfig {
    /// Maximum requests waiting in the queue; a submit finding the
    /// queue at capacity is rejected with [`ServeError::Overloaded`].
    /// `0` rejects every submit (useful to test backpressure paths).
    pub queue_capacity: usize,
    /// Maximum requests absorbed into one [`QueryBatch`] per executor
    /// wakeup (clamped to at least 1). Larger batches amortize better;
    /// smaller ones re-pin fresher epochs more often.
    pub max_batch: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            queue_capacity: 1024,
            max_batch: 64,
        }
    }
}

/// A serving-boundary failure, typed so clients can distinguish
/// backpressure (retry later) from shutdown (stop) from index
/// conditions (the wrapped [`QueryError`]).
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// The bounded queue is full: the request was rejected at
    /// admission, not queued. Retry after draining or shed load.
    Overloaded {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The server is shutting down and no longer admits requests
    /// (already-admitted requests are still drained and answered).
    ShuttingDown,
    /// The pinned epoch's index could not answer (e.g. every shard
    /// quarantined — [`QueryError::NoCoverage`]).
    Query(QueryError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded { capacity } => {
                write!(
                    f,
                    "request queue at capacity ({capacity}); rejected at admission"
                )
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Query(q) => write!(f, "query failed: {q}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Query(q) => Some(q),
            _ => None,
        }
    }
}

impl From<QueryError> for ServeError {
    fn from(q: QueryError) -> ServeError {
        ServeError::Query(q)
    }
}

/// One answered radius query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    /// The epoch whose snapshot answered this query. Every request
    /// absorbed into the same batch reports the same epoch, and the
    /// neighbors are bit-identical to a stop-the-world search of that
    /// epoch's index.
    pub epoch: u64,
    /// The hits, in the index's canonical order (ascending global
    /// index through a router snapshot; leaf order through a
    /// single-tree engine).
    pub neighbors: Vec<Neighbor>,
}

/// Executor observability counters (monotonic since server start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeMetrics {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests answered (including typed-error answers).
    pub served: u64,
    /// Requests rejected at admission ([`ServeError::Overloaded`]).
    pub rejected: u64,
    /// Executor wakeups that absorbed at least one request.
    pub batches: u64,
    /// Largest number of requests absorbed into a single batch.
    pub max_batch_absorbed: usize,
    /// Shard splits executed by the adaptive policy
    /// (accumulated via [`Server::record_adapt`]).
    pub shard_splits: u64,
    /// Shard merges executed by the adaptive policy.
    pub shard_merges: u64,
    /// Adaptive split/merge proposals rejected with a typed reason.
    pub adapt_rejected: u64,
}

/// An index snapshot the executor can serve: anything that appends
/// radius hits and is shareable across the serving threads.
///
/// Implementations must be **pure reads**: two `search_append` calls
/// with the same inputs against the same value return bit-identical
/// hits and stats — the property that makes epoch pinning equal to
/// stop-the-world.
pub trait EpochIndex: Send + Sync + 'static {
    /// Appends the query's hits to `out` (not cleared) and its work to
    /// `stats` — the closure shape [`QueryBatch::push_query`] consumes.
    /// Degenerate radii / non-finite centers append nothing.
    fn search_append(
        &self,
        query: Point3,
        radius: f32,
        scratch: &mut SearchScratch,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    );

    /// Whether this snapshot can answer queries at all; an `Err` fails
    /// every request of the absorbed batch with
    /// [`ServeError::Query`]. Defaults to always-serving.
    fn admission(&self) -> Result<(), QueryError> {
        Ok(())
    }
}

impl EpochIndex for RouterSnapshot {
    fn search_append(
        &self,
        query: Point3,
        radius: f32,
        scratch: &mut SearchScratch,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        RouterSnapshot::search_append(self, query, radius, scratch, out, stats);
    }

    /// A non-empty snapshot whose every shard is quarantined serves
    /// nothing: reject the batch with the same typed error the
    /// snapshot's own `try_` searches return.
    fn admission(&self) -> Result<(), QueryError> {
        let coverage = self.coverage();
        if self.num_shards() > 0 && coverage.offline.len() == self.num_shards() {
            return Err(QueryError::NoCoverage {
                offline: coverage.offline,
            });
        }
        Ok(())
    }
}

impl EpochIndex for RadiusSearchEngine<'static> {
    fn search_append(
        &self,
        query: Point3,
        radius: f32,
        scratch: &mut SearchScratch,
        out: &mut Vec<Neighbor>,
        stats: &mut SearchStats,
    ) {
        RadiusSearchEngine::search_append(self, query, radius, scratch, out, stats);
    }
}

type Outcome = Result<QueryResult, ServeError>;

/// The oneshot rendezvous between a client and the executor.
#[derive(Debug)]
struct TicketState {
    slot: Mutex<Option<Outcome>>,
    ready: Condvar,
}

impl TicketState {
    fn new() -> TicketState {
        TicketState {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn fill(&self, outcome: Outcome) {
        let mut slot = relock(&self.slot);
        *slot = Some(outcome);
        self.ready.notify_all();
    }
}

/// A claim on one admitted request's eventual answer.
#[derive(Debug)]
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    /// Blocks until the executor answers this request.
    pub fn wait(self) -> Outcome {
        let mut slot = relock(&self.state.slot);
        loop {
            if let Some(outcome) = slot.take() {
                return outcome;
            }
            slot = self
                .state
                .ready
                .wait(slot)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking poll: the answer if the executor has produced it.
    /// After `Some`, the ticket is spent (`wait` would block forever);
    /// callers should consume the ticket on `Some`.
    // lint: allow(typed-error-discipline) — `Option` IS the poll
    // contract: `None` means not-ready-yet, not failure; the error
    // channel lives inside `Outcome` itself.
    pub fn try_take(&self) -> Option<Outcome> {
        relock(&self.state.slot).take()
    }
}

/// One admitted request, FIFO-queued for the executor.
#[derive(Debug)]
struct Request {
    query: Point3,
    radius: f32,
    ticket: Arc<TicketState>,
}

#[derive(Debug, Default)]
struct Queue {
    pending: VecDeque<Request>,
    shutdown: bool,
    metrics: ServeMetrics,
}

#[derive(Debug)]
struct Shared<T> {
    publisher: Arc<EpochPublisher<T>>,
    cfg: ServeConfig,
    queue: Mutex<Queue>,
    wake: Condvar,
}

/// The serving executor: one worker thread absorbing admitted requests
/// into epoch-pinned [`QueryBatch`]es. See the [crate docs](self).
///
/// Dropping the server stops admission, drains every already-admitted
/// request, and joins the worker — no ticket is ever left unanswered.
#[derive(Debug)]
pub struct Server<T: EpochIndex> {
    shared: Arc<Shared<T>>,
    worker: Option<thread::JoinHandle<()>>,
}

impl<T: EpochIndex> Server<T> {
    /// Starts the executor over `publisher`'s epochs. The publisher is
    /// shared: the ingest side keeps publishing new snapshots through
    /// its own `Arc` while this server pins them per batch.
    pub fn new(publisher: Arc<EpochPublisher<T>>, cfg: ServeConfig) -> Server<T> {
        let shared = Arc::new(Shared {
            publisher,
            cfg,
            queue: Mutex::new(Queue::default()),
            wake: Condvar::new(),
        });
        let worker_shared = Arc::clone(&shared);
        let worker = thread::Builder::new()
            .name("bonsai-serve".to_string())
            .spawn(move || worker_loop(&worker_shared))
            // lint: allow(panic-free-serving) — thread spawn fails only
            // on process resource exhaustion at server construction,
            // never on serving input; there is no request to degrade.
            .expect("spawn bonsai-serve executor thread");
        Server {
            shared,
            worker: Some(worker),
        }
    }

    /// Submits one radius query. `Ok` means admitted: the request WILL
    /// be answered (await it through the [`Ticket`]). `Err` is
    /// immediate backpressure — nothing was queued.
    pub fn submit(&self, query: Point3, radius: f32) -> Result<Ticket, ServeError> {
        let mut q = relock(&self.shared.queue);
        if q.shutdown {
            return Err(ServeError::ShuttingDown);
        }
        if q.pending.len() >= self.shared.cfg.queue_capacity {
            q.metrics.rejected += 1;
            return Err(ServeError::Overloaded {
                capacity: self.shared.cfg.queue_capacity,
            });
        }
        let state = Arc::new(TicketState::new());
        q.pending.push_back(Request {
            query,
            radius,
            ticket: Arc::clone(&state),
        });
        q.metrics.submitted += 1;
        drop(q);
        self.shared.wake.notify_all();
        Ok(Ticket { state })
    }

    /// Blocking convenience: submit + wait. A degenerate radius or
    /// non-finite center short-circuits to the same empty answer a
    /// stop-the-world engine gives, without occupying queue capacity.
    pub fn radius_query(&self, query: Point3, radius: f32) -> Result<QueryResult, ServeError> {
        if !bonsai_kdtree::radius_is_searchable(radius)
            || !bonsai_kdtree::query_is_searchable(query)
        {
            return Ok(QueryResult {
                epoch: self.shared.publisher.epoch(),
                neighbors: Vec::new(),
            });
        }
        self.submit(query, radius)?.wait()
    }

    /// Stops admitting new requests; already-admitted ones still
    /// drain. Idempotent. (Dropping the server calls this and then
    /// joins the worker.)
    pub fn begin_shutdown(&self) {
        relock(&self.shared.queue).shutdown = true;
        self.shared.wake.notify_all();
    }

    /// Current executor counters.
    pub fn metrics(&self) -> ServeMetrics {
        relock(&self.shared.queue).metrics
    }

    /// Folds one adaptive-sharding window
    /// ([`ShardRouter::adapt_step`](bonsai_core::ShardRouter::adapt_step)'s
    /// report) into this server's counters, so the serving surface
    /// exposes splits, merges, and typed rejections alongside the
    /// request metrics. The ingest side calls this after each adapt
    /// window; the accumulation is monotonic like every other counter.
    pub fn record_adapt(&self, report: &AdaptReport) {
        let mut q = relock(&self.shared.queue);
        q.metrics.shard_splits += report.splits;
        q.metrics.shard_merges += report.merges;
        q.metrics.adapt_rejected += report.rejected;
    }

    /// The epoch publisher this server pins from.
    pub fn publisher(&self) -> &Arc<EpochPublisher<T>> {
        &self.shared.publisher
    }
}

impl<T: EpochIndex> Drop for Server<T> {
    fn drop(&mut self) {
        self.begin_shutdown();
        if let Some(worker) = self.worker.take() {
            // A worker panic already answered no one; propagating it
            // out of drop would abort — losing the panic message — so
            // the join result is deliberately discarded.
            let _ = worker.join();
        }
    }
}

/// The executor body: wait → drain ≤ `max_batch` FIFO requests → pin
/// the current epoch → answer the whole batch against that one
/// snapshot → rendezvous each ticket.
fn worker_loop<T: EpochIndex>(shared: &Shared<T>) {
    let mut batch = QueryBatch::new();
    let mut drained: Vec<Request> = Vec::new();
    loop {
        {
            let mut q = relock(&shared.queue);
            while q.pending.is_empty() && !q.shutdown {
                q = shared.wake.wait(q).unwrap_or_else(PoisonError::into_inner);
            }
            if q.pending.is_empty() {
                return; // shutdown and fully drained
            }
            let n = q.pending.len().min(shared.cfg.max_batch.max(1));
            drained.extend(q.pending.drain(..n));
            q.metrics.batches += 1;
            q.metrics.max_batch_absorbed = q.metrics.max_batch_absorbed.max(n);
            q.metrics.served += n as u64;
        }
        // Pin ONE epoch for the whole absorbed batch: every request in
        // it is answered from the same immutable snapshot, however
        // many epochs ingest publishes while the batch runs.
        let epoch = shared.publisher.pin();
        let index = epoch.value();
        match index.admission() {
            Err(err) => {
                for request in drained.drain(..) {
                    request.ticket.fill(Err(ServeError::Query(err.clone())));
                }
            }
            Ok(()) => {
                batch.reset();
                for request in &drained {
                    let (query, radius) = (request.query, request.radius);
                    batch.push_query(|scratch, out, stats| {
                        index.search_append(query, radius, scratch, out, stats);
                    });
                }
                for (i, request) in drained.drain(..).enumerate() {
                    request.ticket.fill(Ok(QueryResult {
                        epoch: epoch.id(),
                        neighbors: batch.results(i).to_vec(),
                    }));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_core::{BonsaiTree, ShardConfig, ShardRouter};
    use bonsai_kdtree::KdTreeConfig;
    use bonsai_sim::SimEngine;

    fn urban_cloud(n: usize, seed: u64) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| {
                let cluster = (next() * 12.0).floor();
                Point3::new(
                    (cluster - 6.0) * 15.0 + next() * 3.0,
                    (next() - 0.5) * 60.0,
                    next() * 2.5,
                )
            })
            .collect()
    }

    fn snapshot_server(cloud: &[Point3]) -> (ShardRouter, Server<RouterSnapshot>) {
        let router =
            ShardRouter::bonsai(cloud, KdTreeConfig::default(), ShardConfig::with_shards(4));
        let publisher = Arc::new(EpochPublisher::new(router.snapshot()));
        let server = Server::new(publisher, ServeConfig::default());
        (router, server)
    }

    #[test]
    fn served_answers_match_the_router_exactly() {
        let cloud = urban_cloud(2000, 1);
        let (router, server) = snapshot_server(&cloud);
        let queries: Vec<Point3> = cloud.iter().step_by(13).copied().collect();
        let tickets: Vec<Ticket> = queries
            .iter()
            .map(|&q| server.submit(q, 1.1).expect("admitted"))
            .collect();
        let mut scratch = SearchScratch::new();
        let mut expect = Vec::new();
        for (i, (ticket, &q)) in tickets.into_iter().zip(&queries).enumerate() {
            let result = ticket.wait().expect("served");
            assert_eq!(result.epoch, 0);
            let mut stats = SearchStats::default();
            router.search_one(q, 1.1, &mut scratch, &mut expect, &mut stats);
            assert_eq!(result.neighbors, expect, "query {i}");
        }
        let m = server.metrics();
        assert_eq!(m.submitted, queries.len() as u64);
        assert_eq!(m.served, queries.len() as u64);
        assert_eq!(m.rejected, 0);
        assert!(m.batches >= 1);
    }

    #[test]
    fn zero_capacity_queue_rejects_with_overloaded() {
        let cloud = urban_cloud(300, 2);
        let (_router, server) = snapshot_server(&cloud);
        let server = Server::new(
            Arc::clone(server.publisher()),
            ServeConfig {
                queue_capacity: 0,
                max_batch: 8,
            },
        );
        match server.submit(cloud[0], 1.0) {
            Err(ServeError::Overloaded { capacity: 0 }) => {}
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(server.metrics().rejected, 1);
    }

    #[test]
    fn shutdown_stops_admission_but_drains_admitted() {
        let cloud = urban_cloud(500, 3);
        let (_router, server) = snapshot_server(&cloud);
        let ticket = server.submit(cloud[1], 0.9).expect("admitted");
        server.begin_shutdown();
        assert_eq!(
            server.submit(cloud[2], 0.9).err(),
            Some(ServeError::ShuttingDown)
        );
        let result = ticket.wait().expect("admitted requests still drain");
        assert!(!result.neighbors.is_empty());
    }

    #[test]
    fn degenerate_inputs_answer_empty_without_queueing() {
        let cloud = urban_cloud(300, 4);
        let (_router, server) = snapshot_server(&cloud);
        for r in [0.0f32, -1.0, f32::NAN, f32::INFINITY] {
            let result = server.radius_query(cloud[0], r).expect("short-circuit");
            assert!(result.neighbors.is_empty(), "radius {r}");
        }
        let bad_center = Point3::new(f32::NAN, 0.0, 0.0);
        let result = server.radius_query(bad_center, 1.0).expect("short-circuit");
        assert!(result.neighbors.is_empty());
        assert_eq!(server.metrics().submitted, 0, "degenerates must not queue");
    }

    #[test]
    fn requests_ride_the_epoch_they_were_absorbed_under() {
        let cloud = urban_cloud(1200, 5);
        let mut router =
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(3));
        let publisher = Arc::new(EpochPublisher::new(router.snapshot()));
        let server = Server::new(Arc::clone(&publisher), ServeConfig::default());

        let before = server.radius_query(cloud[7], 1.0).expect("served");
        assert_eq!(before.epoch, 0);

        // Delete the probe's own point and publish epoch 1.
        assert!(router.delete(7));
        router.commit();
        publisher.publish(router.snapshot());

        let after = server.radius_query(cloud[7], 1.0).expect("served");
        assert_eq!(after.epoch, 1);
        assert!(before.neighbors.iter().any(|n| n.index == 7));
        assert!(after.neighbors.iter().all(|n| n.index != 7));
    }

    #[test]
    fn fully_quarantined_snapshot_fails_typed_not_silent() {
        let cloud = urban_cloud(400, 6);
        let mut router =
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(2));
        for s in 0..router.num_shards() {
            router.quarantine(s);
        }
        let publisher = Arc::new(EpochPublisher::new(router.snapshot()));
        let server = Server::new(publisher, ServeConfig::default());
        match server.radius_query(cloud[0], 1.0) {
            Err(ServeError::Query(QueryError::NoCoverage { offline })) => {
                assert_eq!(offline.len(), 2);
            }
            other => panic!("expected NoCoverage, got {other:?}"),
        }
    }

    #[test]
    fn shared_engine_serves_single_tree_snapshots() {
        let cloud = urban_cloud(800, 7);
        let mut sim = SimEngine::disabled();
        let tree = Arc::new(BonsaiTree::build(
            cloud.clone(),
            KdTreeConfig::default(),
            &mut sim,
        ));
        let engine = RadiusSearchEngine::shared_bonsai(Arc::clone(&tree));
        let publisher = Arc::new(EpochPublisher::new(engine));
        let server = Server::new(publisher, ServeConfig::default());
        let got = server.radius_query(cloud[11], 0.8).expect("served");
        let expect = tree.radius_search_simple(cloud[11], 0.8);
        assert_eq!(got.neighbors, expect);
    }

    #[test]
    fn adapt_reports_surface_in_serve_metrics_and_pins_hold() {
        use bonsai_core::ShardPolicy;

        let cloud = urban_cloud(3000, 9);
        let mut router =
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), ShardConfig::with_shards(4));
        let publisher = Arc::new(EpochPublisher::new(router.snapshot()));
        let server = Server::new(Arc::clone(&publisher), ServeConfig::default());

        // A client keeps answering on the pre-split epoch.
        let pinned = publisher.pin();
        let probe = cloud[0];
        let before = server.radius_query(probe, 1.1).expect("served");
        assert_eq!(before.epoch, 0);

        // Ingest drives a skewed load until the policy splits, folding
        // each window's report into the serving metrics.
        let policy = ShardPolicy {
            min_split_points: 64,
            min_queries: 16.0,
            ..ShardPolicy::default()
        };
        let hot: Vec<Point3> = cloud
            .iter()
            .copied()
            .filter(|p| p.distance_squared(probe) < 64.0)
            .take(128)
            .collect();
        let mut batch = QueryBatch::new();
        let mut splits = 0;
        for _ in 0..12 {
            router.search_batch(&hot, 1.0, &mut batch);
            let report = router.adapt_step(&policy, publisher.epoch_lag());
            splits += report.splits;
            server.record_adapt(&report);
            publisher.publish(router.snapshot());
        }
        let m = server.metrics();
        assert!(splits >= 1, "skewed load never split");
        assert_eq!(m.shard_splits, splits);
        assert_eq!(
            m.shard_splits + m.shard_merges,
            router.load_report().splits + router.load_report().merges
        );

        // The pre-split pin still answers bit-identically…
        let mut scratch = SearchScratch::new();
        let mut frozen = Vec::new();
        let mut stats = SearchStats::default();
        pinned
            .value()
            .search_append(probe, 1.1, &mut scratch, &mut frozen, &mut stats);
        assert_eq!(frozen, before.neighbors, "pre-split epoch drifted");
        // …while new requests ride the rebalanced topology, same hits.
        let after = server.radius_query(probe, 1.1).expect("served");
        assert!(after.epoch > 0);
        assert_eq!(after.neighbors, before.neighbors);
    }

    #[test]
    fn concurrent_submitters_all_get_correct_answers() {
        let cloud = urban_cloud(2500, 8);
        let (router, server) = snapshot_server(&cloud);
        let server = &server;
        let cloud_ref = &cloud;
        let results: Vec<Vec<(usize, QueryResult)>> = thread::scope(|s| {
            (0..4usize)
                .map(|t| {
                    s.spawn(move || {
                        (0..50usize)
                            .map(|k| {
                                let qi = (t * 61 + k * 7) % cloud_ref.len();
                                let r = server
                                    .radius_query(cloud_ref[qi], 1.0)
                                    .expect("admitted under default capacity");
                                (qi, r)
                            })
                            .collect()
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("submitter thread"))
                .collect()
        });
        let mut scratch = SearchScratch::new();
        let mut expect = Vec::new();
        for (qi, got) in results.into_iter().flatten() {
            let mut stats = SearchStats::default();
            router.search_one(cloud[qi], 1.0, &mut scratch, &mut expect, &mut stats);
            assert_eq!(got.neighbors, expect, "query {qi}");
        }
    }
}
