//! Criterion micro-benchmarks of the batch radius-search engine: the
//! seed-style per-query path vs. batched vs. batched + threads, on the
//! 20k-point urban cloud (host performance; the acceptance target is
//! ≥ 2× batched throughput over per-query).

use bonsai_bench::workload::{
    batch_queries, urban_cloud, BATCH_CLOUD, BATCH_QUERIES, BATCH_RADIUS,
};
use bonsai_core::{BonsaiTree, RadiusSearchEngine};
use bonsai_isa::Machine;
use bonsai_kdtree::{KdTreeConfig, QueryBatch, SearchStats};
use bonsai_sim::SimEngine;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const RADIUS: f32 = BATCH_RADIUS;

fn bench_batched(c: &mut Criterion) {
    let cloud = urban_cloud(BATCH_CLOUD);
    let mut sim = SimEngine::disabled();
    let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
    let queries = batch_queries(&cloud, BATCH_QUERIES);

    let mut group = c.benchmark_group("radius_search_batched");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(BATCH_QUERIES as u64));

    for (name, baseline) in [("baseline", true), ("bonsai", false)] {
        // The seed-shaped path: one independent instrumented-API search
        // per query (fresh result vectors, fresh per-query processor
        // under Bonsai).
        group.bench_function(format!("{name}_per_query"), |b| {
            let mut out = Vec::new();
            let mut machine = Machine::new();
            let mut stats = SearchStats::default();
            b.iter(|| {
                let mut total = 0usize;
                for &q in &queries {
                    if baseline {
                        out = tree.kd_tree().radius_search_simple(q, RADIUS);
                    } else {
                        tree.radius_search(&mut sim, &mut machine, q, RADIUS, &mut out, &mut stats);
                    }
                    total += out.len();
                }
                total
            })
        });

        let engine = if baseline {
            RadiusSearchEngine::baseline(tree.kd_tree())
        } else {
            RadiusSearchEngine::bonsai(&tree)
        };
        group.bench_function(format!("{name}_batched"), |b| {
            let mut batch = QueryBatch::new();
            b.iter(|| {
                engine.search_batch(&queries, RADIUS, &mut batch);
                batch.total_matches()
            })
        });

        #[cfg(feature = "parallel")]
        group.bench_function(format!("{name}_batched_parallel"), |b| {
            let mut batch = QueryBatch::new();
            b.iter(|| {
                engine.search_batch_parallel(&queries, RADIUS, &mut batch, 0);
                batch.total_matches()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batched);
criterion_main!(benches);
