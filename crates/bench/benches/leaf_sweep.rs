//! Criterion micro-benchmarks of the leaf-sweep kernels: the scalar
//! reference loop vs. the runtime-detected SIMD backend
//! (`kdtree::simd::active_backend()`), for the baseline `f32` sweep
//! and the compressed (f16 + error-shell) sweep, over the visit lists
//! real queries produce on the 20k-point urban cloud (collected once
//! up front, so only the sweep kernel is timed). Throughput is points
//! inspected per iteration; the backend comparison runs inside one
//! binary through the process-wide scalar override.

use bonsai_bench::workload::{
    batch_queries, collect_sweep_sets, urban_cloud, BATCH_CLOUD, SWEEP_RADIUS,
};
use bonsai_core::{BonsaiTree, RadiusSearchEngine};
use bonsai_kdtree::{simd, KdTreeConfig, SearchStats};
use bonsai_sim::SimEngine;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_leaf_sweep(c: &mut Criterion) {
    let cloud = urban_cloud(BATCH_CLOUD);
    let mut sim = SimEngine::disabled();
    let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
    let queries = batch_queries(&cloud, 32);
    let (sweep_sets, sweep_points) = collect_sweep_sets(tree.kd_tree(), &queries, SWEEP_RADIUS);

    let mut group = c.benchmark_group("leaf_sweep");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.throughput(Throughput::Elements(sweep_points));

    let ov = simd::scalar_override();
    for (mode, baseline) in [("baseline", true), ("bonsai", false)] {
        let engine = if baseline {
            RadiusSearchEngine::baseline(tree.kd_tree())
        } else {
            RadiusSearchEngine::bonsai(&tree)
        };
        let backend = simd::active_backend();
        for (label, force_scalar) in [
            ("scalar".to_string(), true),
            (format!("simd_{backend}"), false),
        ] {
            ov.set(force_scalar);
            group.bench_function(format!("{mode}_{label}"), |b| {
                let mut out = Vec::new();
                let mut stats = SearchStats::default();
                b.iter(|| {
                    let mut total = 0usize;
                    for (q, visited) in queries.iter().zip(&sweep_sets) {
                        out.clear();
                        engine.sweep_visited(visited, *q, SWEEP_RADIUS, &mut out, &mut stats);
                        total += out.len();
                    }
                    total
                })
            });
        }
        ov.set(false);
    }
    drop(ov);
    group.finish();
}

criterion_group!(benches, bench_leaf_sweep);
criterion_main!(benches);
