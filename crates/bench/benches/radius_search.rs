//! Criterion micro-benchmarks of the radius-search paths (host
//! performance of the library itself; the *simulated* performance
//! comparison is the `fig9_extract_kernel` binary).

use bonsai_bench::workload::{urban_cloud, BATCH_CLOUD};
use bonsai_core::{BonsaiTree, SoftwareCodecProcessor};
use bonsai_isa::Machine;
use bonsai_kdtree::{BaselineLeafProcessor, KdTreeConfig, SearchStats};
use bonsai_sim::SimEngine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_radius_search(c: &mut Criterion) {
    let cloud = urban_cloud(BATCH_CLOUD);
    let mut sim = SimEngine::disabled();
    let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
    let mut group = c.benchmark_group("radius_search_per_query");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    let radius = 0.8f32;

    group.bench_function("baseline_f32", |b| {
        let mut proc = BaselineLeafProcessor::new(&mut sim);
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        let mut qi = 0;
        b.iter(|| {
            qi = (qi + 97) % cloud.len();
            tree.kd_tree()
                .radius_search(&mut sim, &mut proc, cloud[qi], radius, &mut out, &mut stats);
            out.len()
        })
    });

    group.bench_function("bonsai_compressed", |b| {
        let mut machine = Machine::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        let mut qi = 0;
        b.iter(|| {
            qi = (qi + 97) % cloud.len();
            tree.radius_search(
                &mut sim,
                &mut machine,
                cloud[qi],
                radius,
                &mut out,
                &mut stats,
            );
            out.len()
        })
    });

    group.bench_function("software_codec", |b| {
        let mut proc = SoftwareCodecProcessor::new(&mut sim, tree.directory());
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        let mut qi = 0;
        b.iter(|| {
            qi = (qi + 97) % cloud.len();
            tree.kd_tree()
                .radius_search(&mut sim, &mut proc, cloud[qi], radius, &mut out, &mut stats);
            out.len()
        })
    });
    group.finish();

    // Instrumentation overhead: the same search with the full cache/
    // branch simulation enabled.
    let mut group = c.benchmark_group("instrumentation_overhead");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for enabled in [false, true] {
        group.bench_with_input(
            BenchmarkId::new(
                "baseline_search",
                if enabled { "simulated" } else { "functional" },
            ),
            &enabled,
            |b, &enabled| {
                let mut sim = if enabled {
                    SimEngine::new(&bonsai_sim::CpuConfig::a72_like())
                } else {
                    SimEngine::disabled()
                };
                let mut proc = BaselineLeafProcessor::new(&mut sim);
                let mut out = Vec::new();
                let mut stats = SearchStats::default();
                let mut qi = 0;
                b.iter(|| {
                    qi = (qi + 97) % cloud.len();
                    tree.kd_tree().radius_search(
                        &mut sim, &mut proc, cloud[qi], radius, &mut out, &mut stats,
                    );
                    out.len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_radius_search);
criterion_main!(benches);
