//! Criterion micro-benchmarks of the Figure 6 codec (host throughput of
//! compress/decompress on full 15-point leaves).

use bonsai_floatfmt::Half;
use bonsai_isa::{codec, MAX_POINTS};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn leaf_similar() -> Vec<[u16; 3]> {
    (0..15)
        .map(|i| {
            let v = 10.0 + 0.3 * i as f32;
            [
                Half::from_f32(v).to_bits(),
                Half::from_f32(-v * 0.5).to_bits(),
                Half::from_f32(1.0 + 0.01 * i as f32).to_bits(),
            ]
        })
        .collect()
}

fn leaf_dissimilar() -> Vec<[u16; 3]> {
    (0..15)
        .map(|i| {
            let v = (2.0f32).powi(i - 7) * if i % 2 == 0 { 1.0 } else { -1.0 };
            [
                Half::from_f32(v).to_bits(),
                Half::from_f32(v * 3.0).to_bits(),
                Half::from_f32(v * 0.1).to_bits(),
            ]
        })
        .collect()
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_per_leaf");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(15));
    for (name, leaf) in [
        ("similar", leaf_similar()),
        ("dissimilar", leaf_dissimilar()),
    ] {
        group.bench_function(format!("compress_{name}"), |b| {
            b.iter(|| codec::compress(std::hint::black_box(&leaf)).len())
        });
        let compressed = codec::compress(&leaf);
        group.bench_function(format!("decompress_{name}"), |b| {
            let mut out = [[0u16; 3]; MAX_POINTS];
            b.iter(|| {
                codec::decompress(std::hint::black_box(compressed.bytes()), 15, &mut out);
                out[7][1]
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
