//! Criterion micro-benchmarks of tree construction: plain k-d tree vs
//! Bonsai (tree + leaf compression), across cloud sizes.

use bonsai_core::BonsaiTree;
use bonsai_geom::Point3;
use bonsai_kdtree::{KdTree, KdTreeConfig};
use bonsai_sim::SimEngine;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn cloud(n: usize) -> Vec<Point3> {
    let mut state = 0xBEEFu64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f32 / (1u64 << 53) as f32
    };
    (0..n)
        .map(|_| Point3::new(next() * 120.0 - 60.0, next() * 120.0 - 60.0, next() * 3.0))
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("tree_build");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for n in [2_000usize, 10_000, 40_000] {
        let pts = cloud(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("kdtree", n), &pts, |b, pts| {
            b.iter(|| {
                let mut sim = SimEngine::disabled();
                KdTree::build(pts.clone(), KdTreeConfig::default(), &mut sim)
                    .nodes()
                    .len()
            })
        });
        group.bench_with_input(BenchmarkId::new("bonsai", n), &pts, |b, pts| {
            b.iter(|| {
                let mut sim = SimEngine::disabled();
                BonsaiTree::build(pts.clone(), KdTreeConfig::default(), &mut sim)
                    .directory()
                    .total_bytes()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
