//! Criterion micro-benchmarks of the floating-point conversions (the
//! `LDSPZPB`/`SQDWE` hot path of the simulator).

use bonsai_floatfmt::{Half, MiniFormat, PartErrorMem};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn values() -> Vec<f32> {
    (0..4096)
        .map(|i| (i as f32 * 0.037 - 75.0) * 1.013)
        .collect()
}

fn bench_conversions(c: &mut Criterion) {
    let vals = values();
    let halves: Vec<Half> = vals.iter().map(|&v| Half::from_f32(v)).collect();

    let mut group = c.benchmark_group("conversions");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(3));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.throughput(Throughput::Elements(vals.len() as u64));
    group.bench_function("f32_to_f16_fast", |b| {
        b.iter(|| {
            vals.iter()
                .map(|&v| Half::from_f32(v).to_bits() as u32)
                .sum::<u32>()
        })
    });
    group.bench_function("f16_to_f32_fast", |b| {
        b.iter(|| halves.iter().map(|h| h.to_f32()).sum::<f32>())
    });
    group.bench_function("f32_to_f16_generic", |b| {
        b.iter(|| {
            vals.iter()
                .map(|&v| MiniFormat::IEEE_HALF.quantize(v))
                .sum::<u32>()
        })
    });
    group.bench_function("bfloat16_round_trip", |b| {
        b.iter(|| {
            vals.iter()
                .map(|&v| MiniFormat::BFLOAT16.round_trip(v))
                .sum::<f32>()
        })
    });
    group.bench_function("sqdwe_error_bound", |b| {
        let lut = PartErrorMem::new();
        b.iter(|| {
            halves
                .iter()
                .map(|h| lut.max_squared_difference_error(0.25, h.exponent_field()))
                .sum::<f32>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_conversions);
criterion_main!(benches);
