//! Shared command-line plumbing for the figure/table regeneration
//! binaries.
//!
//! Every binary accepts:
//!
//! * `--quick` — a small smoke-run configuration (seconds instead of
//!   minutes);
//! * `--frames N` — override the number of frames the experiment
//!   simulates (where applicable).
//!
//! Without flags, binaries run the paper-scale configuration: the
//! eight-minute synthetic drive with 20 × 300 ms systematic sub-samples
//! (60 simulated frames).

#![forbid(unsafe_code)]

use bonsai_pipeline::ExperimentConfig;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The experiment configuration (paper or quick).
    pub config: ExperimentConfig,
    /// Optional frame-count override.
    pub frames: Option<usize>,
    /// Whether `--quick` was passed.
    pub quick: bool,
}

impl Cli {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown arguments.
    pub fn parse() -> Cli {
        Cli::parse_from(std::env::args().skip(1))
    }

    /// Parses the given arguments.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Cli {
        let mut quick = false;
        let mut frames = None;
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                "--frames" => {
                    let v = iter.next().expect("--frames needs a value");
                    frames = Some(v.parse().expect("--frames needs a number"));
                }
                "--help" | "-h" => {
                    println!("usage: [--quick] [--frames N]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?} (try --help)"),
            }
        }
        let config = if quick {
            ExperimentConfig::quick()
        } else {
            ExperimentConfig::paper()
        };
        Cli {
            config,
            frames,
            quick,
        }
    }

    /// The frame count to use, defaulting per scale.
    pub fn frames_or(&self, paper_default: usize, quick_default: usize) -> usize {
        self.frames.unwrap_or(if self.quick {
            quick_default
        } else {
            paper_default
        })
    }
}

/// Shared synthetic workloads, so the criterion benches and the
/// `BENCH_*.json` trajectory binaries measure the identical clouds.
pub mod workload {
    use bonsai_geom::Point3;

    /// Cloud size of the batch radius-search workload.
    pub const BATCH_CLOUD: usize = 20_000;
    /// Queries per batch of the batch radius-search workload.
    pub const BATCH_QUERIES: usize = 2_048;
    /// Search radius of the batch radius-search workload, meters.
    pub const BATCH_RADIUS: f32 = 0.8;

    /// The clustered "urban" cloud the radius-search benches share:
    /// 40 lanes of structure along x, LiDAR-plausible spreads in y/z.
    pub fn urban_cloud(n: usize) -> Vec<Point3> {
        let mut state = 0xC0FFEEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|_| {
                let cluster = (next() * 40.0).floor();
                Point3::new(
                    (cluster - 20.0) * 4.0 + next() * 2.0,
                    (next() - 0.5) * 100.0,
                    next() * 2.5,
                )
            })
            .collect()
    }

    /// The query set of the batch workload: every 97th point, wrapped.
    pub fn batch_queries(cloud: &[Point3], n: usize) -> Vec<Point3> {
        (0..n).map(|i| cloud[(i * 97) % cloud.len()]).collect()
    }

    /// Standard deviation of the ego-skewed query stream, meters: the
    /// AD serving pattern concentrates queries in the ego vehicle's
    /// immediate neighborhood (obstacle inflation, local costmaps).
    pub const SKEW_STD: f32 = 8.0;

    /// A Gaussian-around-ego query stream with a drifting ego: `n`
    /// queries sampled `N(ego, SKEW_STD)` in x/y (z uniform over the
    /// cloud's height) while the ego drives one lap of the urban
    /// cloud's extent. The skewed counterpart of
    /// [`batch_queries`] — same count contract, deterministic, but the
    /// load concentrates on whichever shards currently cover the ego's
    /// neighborhood and *moves* as the ego does, which is exactly the
    /// regime the adaptive router targets.
    pub fn skewed_queries(n: usize, seed: u64) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32
        };
        // Box-Muller over the xorshift stream: one unit normal per call.
        let mut normal = move || {
            let u1 = next().max(1.0e-7);
            let u2 = next();
            (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
        };
        let mut state2 = seed.wrapping_add(0xD1B54A32D192ED03) | 1;
        let mut uniform = move || {
            state2 ^= state2 << 13;
            state2 ^= state2 >> 7;
            state2 ^= state2 << 17;
            (state2 >> 11) as f32 / (1u64 << 53) as f32
        };
        (0..n)
            .map(|i| {
                // The ego drives the x extent of `urban_cloud` once
                // over the stream, weaving gently in y.
                let t = i as f32 / n.max(1) as f32;
                let ego_x = -80.0 + 160.0 * t;
                let ego_y = 30.0 * (std::f32::consts::TAU * 2.0 * t).sin();
                Point3::new(
                    ego_x + normal() * SKEW_STD,
                    ego_y + normal() * SKEW_STD,
                    uniform() * 2.5,
                )
            })
            .collect()
    }

    /// Radius of the leaf-sweep kernel comparisons (criterion group
    /// and the `simd` rows of `BENCH_radius_batch.json`): larger than
    /// [`BATCH_RADIUS`] so each collected visit list carries enough
    /// leaf work to time the kernel rather than the dispatch — an
    /// obstacle-inflation-scale query; the kernels are radius-blind.
    pub const SWEEP_RADIUS: f32 = BATCH_RADIUS * 5.0;

    /// Collects each sweep query's visited leaves up front (the
    /// traversal half of the two-phase search) and the total points
    /// they hold, so a bench loop over
    /// `RadiusSearchEngine::sweep_visited` times exactly the
    /// leaf-sweep kernels. Shared by the criterion group and the
    /// trajectory binary so both measure the same thing.
    pub fn collect_sweep_sets(
        tree: &bonsai_kdtree::KdTree,
        queries: &[Point3],
        radius: f32,
    ) -> (Vec<Vec<bonsai_kdtree::simd::LeafVisit>>, u64) {
        let mut scratch = bonsai_kdtree::SearchScratch::new();
        let mut stats = bonsai_kdtree::SearchStats::default();
        let sets: Vec<Vec<bonsai_kdtree::simd::LeafVisit>> = queries
            .iter()
            .map(|&q| {
                let mut visited = Vec::new();
                tree.collect_leaves_in_radius(q, radius, &mut scratch, &mut stats, &mut visited);
                visited
            })
            .collect();
        let points = sets
            .iter()
            .flat_map(|s| s.iter().map(|&(_, _, c)| c as u64))
            .sum();
        (sets, points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_scale() {
        let cli = Cli::parse_from(Vec::new());
        assert!(!cli.quick);
        assert_eq!(cli.config.samples, 20);
        assert_eq!(cli.frames_or(60, 4), 60);
    }

    #[test]
    fn quick_flag_switches_config() {
        let cli = Cli::parse_from(vec!["--quick".to_string()]);
        assert!(cli.quick);
        assert_eq!(cli.frames_or(60, 4), 4);
    }

    #[test]
    fn frames_override_wins() {
        let cli = Cli::parse_from(vec![
            "--quick".to_string(),
            "--frames".to_string(),
            "7".to_string(),
        ]);
        assert_eq!(cli.frames_or(60, 4), 7);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_argument_panics() {
        Cli::parse_from(vec!["--bogus".to_string()]);
    }
}
