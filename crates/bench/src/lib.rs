//! Shared command-line plumbing for the figure/table regeneration
//! binaries.
//!
//! Every binary accepts:
//!
//! * `--quick` — a small smoke-run configuration (seconds instead of
//!   minutes);
//! * `--frames N` — override the number of frames the experiment
//!   simulates (where applicable).
//!
//! Without flags, binaries run the paper-scale configuration: the
//! eight-minute synthetic drive with 20 × 300 ms systematic sub-samples
//! (60 simulated frames).

use bonsai_pipeline::ExperimentConfig;

/// Parsed command-line options.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The experiment configuration (paper or quick).
    pub config: ExperimentConfig,
    /// Optional frame-count override.
    pub frames: Option<usize>,
    /// Whether `--quick` was passed.
    pub quick: bool,
}

impl Cli {
    /// Parses `std::env::args()`.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on unknown arguments.
    pub fn parse() -> Cli {
        Cli::parse_from(std::env::args().skip(1))
    }

    /// Parses the given arguments.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Cli {
        let mut quick = false;
        let mut frames = None;
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--quick" => quick = true,
                "--frames" => {
                    let v = iter.next().expect("--frames needs a value");
                    frames = Some(v.parse().expect("--frames needs a number"));
                }
                "--help" | "-h" => {
                    println!("usage: [--quick] [--frames N]");
                    std::process::exit(0);
                }
                other => panic!("unknown argument {other:?} (try --help)"),
            }
        }
        let config = if quick {
            ExperimentConfig::quick()
        } else {
            ExperimentConfig::paper()
        };
        Cli {
            config,
            frames,
            quick,
        }
    }

    /// The frame count to use, defaulting per scale.
    pub fn frames_or(&self, paper_default: usize, quick_default: usize) -> usize {
        self.frames.unwrap_or(if self.quick {
            quick_default
        } else {
            paper_default
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_scale() {
        let cli = Cli::parse_from(Vec::new());
        assert!(!cli.quick);
        assert_eq!(cli.config.samples, 20);
        assert_eq!(cli.frames_or(60, 4), 60);
    }

    #[test]
    fn quick_flag_switches_config() {
        let cli = Cli::parse_from(vec!["--quick".to_string()]);
        assert!(cli.quick);
        assert_eq!(cli.frames_or(60, 4), 4);
    }

    #[test]
    fn frames_override_wins() {
        let cli = Cli::parse_from(vec![
            "--quick".to_string(),
            "--frames".to_string(),
            "7".to_string(),
        ]);
        assert_eq!(cli.frames_or(60, 4), 7);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_argument_panics() {
        Cli::parse_from(vec!["--bogus".to_string()]);
    }
}
