//! Ablation: the safety shell — re-computation cost vs the error rate
//! of skipping it.

use bonsai_bench::Cli;
use bonsai_pipeline::experiments::ablations::ShellAblation;

fn main() {
    let cli = Cli::parse();
    let frames = cli.frames_or(6, 1);
    let result = ShellAblation::run(cli.config, frames);
    print!("{}", result.render());
}
