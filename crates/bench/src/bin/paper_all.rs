//! Regenerates every figure and table in one run (the paired
//! baseline/Bonsai simulation is shared across Figures 9–12).

use bonsai_bench::Cli;
use bonsai_pipeline::experiments::{
    ablations::{LeafSizeAblation, ShellAblation, SoftwareCodecAblation, SplitRuleAblation},
    fig10::Fig10Result,
    fig11::Fig11Result,
    fig12::Fig12Result,
    fig2::Fig2Result,
    fig9::Fig9Result,
    paired::PairedRun,
    sec3a::Sec3aResult,
    table1::Table1Result,
    table3::Table3Result,
    table5::Table5Result,
};

fn main() {
    let cli = Cli::parse();
    let cfg = cli.config.clone();

    println!("K-D Bonsai reproduction — full evaluation\n");
    println!(
        "{}",
        Fig2Result::run(
            cfg.clone(),
            cli.frames_or(10, 2),
            if cli.quick { 1 } else { 4 }
        )
        .render()
    );
    println!(
        "{}",
        Sec3aResult::run(cfg.clone(), cli.frames_or(20, 2)).render()
    );
    println!(
        "{}",
        Table1Result::run(
            cfg.clone(),
            cli.frames_or(6, 1),
            if cli.quick { 7 } else { 3 }
        )
        .render()
    );

    let run = PairedRun::run(cfg.clone());
    println!("{}", Fig9Result::from_paired(&run).render());
    println!("{}", Fig10Result::from_paired(&run).render());
    println!("{}", Fig11Result::from_paired(&run).render());
    println!("{}", Fig12Result::from_paired(&run).render());
    println!("{}", Table5Result::run().render());

    let mut t3cfg = cfg.clone();
    let full = cli.frames_or(240, 16);
    if !cli.quick {
        t3cfg.sequence.duration_s = full as f32 / t3cfg.sequence.frame_hz;
    }
    println!("{}", Table3Result::run(t3cfg, full).render());

    println!(
        "{}",
        LeafSizeAblation::run(cfg.clone(), &[4, 8, 15, 16], cli.frames_or(3, 1)).render()
    );
    println!(
        "{}",
        SplitRuleAblation::run(cfg.clone(), cli.frames_or(3, 1)).render()
    );
    println!(
        "{}",
        ShellAblation::run(cfg.clone(), cli.frames_or(3, 1)).render()
    );
    println!(
        "{}",
        SoftwareCodecAblation::run(cfg, cli.frames_or(3, 1)).render()
    );
}
