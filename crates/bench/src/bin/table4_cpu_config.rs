//! Prints Table IV: the baseline CPU model used by the simulator.

use bonsai_pipeline::report::Table;
use bonsai_sim::{CpuConfig, TimingModel};

fn main() {
    let cpu = CpuConfig::a72_like();
    let t = TimingModel::a72_like();
    let mut table = Table::new("Table IV — baseline CPU model", &["parameter", "value"]);
    table.row(&["CPU", "OoO ARM v8 64-bit @ 3 GHz (modelled)"]);
    table.row(&["fetch width", &cpu.fetch_width.to_string()]);
    table.row(&["issue width", &cpu.issue_width.to_string()]);
    table.row(&["SIMD", &format!("{}-bit (NEON)", cpu.simd_bits)]);
    table.row(&["L1 D-cache", "32 KB, 2-way, 64 B lines"]);
    table.row(&["L2 cache", "1 MB, 16-way, 64 B lines"]);
    table.row(&["main memory", "DDR3-1600 (170-cycle latency model)"]);
    table.row(&["sustained µops/cycle", &format!("{}", t.issue_eff)]);
    table.row(&["load/store ports", &format!("{}", t.mem_ports)]);
    table.row(&["L2 hit penalty", &format!("{} cycles", t.l2_hit_latency)]);
    table.row(&["DRAM penalty", &format!("{} cycles", t.dram_latency)]);
    table.row(&["modelled MLP", &format!("{}", t.mlp)]);
    table.row(&[
        "mispredict penalty",
        &format!("{} cycles", t.mispredict_penalty),
    ]);
    print!("{}", table.render());
}
