//! Regenerates Table I: classification error of reduced floating-point
//! representations.

use bonsai_bench::Cli;
use bonsai_pipeline::experiments::table1::Table1Result;

fn main() {
    let cli = Cli::parse();
    let frames = cli.frames_or(6, 1);
    let stride = if cli.quick { 7 } else { 1 };
    let result = Table1Result::run(cli.config, frames, stride);
    print!("{}", result.render());
}
