//! Regenerates Figure 9a/9b and the Section V-B prose numbers:
//! extract-kernel metric deltas and bytes-to-load-points.

use bonsai_bench::Cli;
use bonsai_pipeline::experiments::{fig9::Fig9Result, paired::PairedRun};

fn main() {
    let cli = Cli::parse();
    let run = PairedRun::run(cli.config);
    print!("{}", Fig9Result::from_paired(&run).render());
}
