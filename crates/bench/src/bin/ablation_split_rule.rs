//! Ablation: median vs sliding-midpoint split rule.

use bonsai_bench::Cli;
use bonsai_pipeline::experiments::ablations::SplitRuleAblation;

fn main() {
    let cli = Cli::parse();
    let frames = cli.frames_or(6, 1);
    let result = SplitRuleAblation::run(cli.config, frames);
    print!("{}", result.render());
}
