//! Regenerates Figure 10: data-memory accesses per hierarchy level.

use bonsai_bench::Cli;
use bonsai_pipeline::experiments::{fig10::Fig10Result, paired::PairedRun};

fn main() {
    let cli = Cli::parse();
    let run = PairedRun::run(cli.config);
    print!("{}", Fig10Result::from_paired(&run).render());
}
