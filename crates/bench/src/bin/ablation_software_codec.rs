//! Ablation: hardware Bonsai instructions vs a software-only codec
//! (the paper's ~7× radius-search slowdown, Section IV-A).

use bonsai_bench::Cli;
use bonsai_pipeline::experiments::ablations::SoftwareCodecAblation;

fn main() {
    let cli = Cli::parse();
    let frames = cli.frames_or(4, 1);
    let result = SoftwareCodecAblation::run(cli.config, frames);
    print!("{}", result.render());
}
