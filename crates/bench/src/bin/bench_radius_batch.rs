//! Measures per-query vs. batched vs. batched+parallel radius-search
//! throughput on the 20k-point urban cloud — plus the sharded
//! `ShardRouter` serving path (per-frame build latency and batch
//! throughput) — and writes `BENCH_radius_batch.json`, the
//! perf-trajectory artifact the batch engine is judged by (acceptance:
//! batched ≥ 2× the seed per-query path).
//!
//! ```sh
//! cargo run --release --bin bench_radius_batch [-- --quick]
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use bonsai_bench::workload::{
    batch_queries, collect_sweep_sets, skewed_queries, urban_cloud, BATCH_CLOUD, BATCH_QUERIES,
    BATCH_RADIUS, SKEW_STD, SWEEP_RADIUS,
};
use bonsai_core::{
    BonsaiTree, CompactionPolicy, RadiusSearchEngine, ShardConfig, ShardPolicy, ShardRouter,
};
use bonsai_isa::Machine;
use bonsai_kdtree::{simd, KdTree, KdTreeConfig, QueryBatch, SearchStats};
use bonsai_sim::SimEngine;

const RADIUS: f32 = BATCH_RADIUS;

/// Shards of the sharded serving rows.
const SHARDS: usize = 8;

/// Runs `work` repeatedly for ~`budget_ms` after one untimed warm-up
/// round, returning `(rounds, elapsed_seconds)`.
fn measure_rounds(budget_ms: u64, mut work: impl FnMut() -> usize) -> (u64, f64) {
    let mut checksum = work();
    let start = Instant::now();
    let mut rounds = 0u64;
    while start.elapsed().as_millis() < budget_ms as u128 {
        checksum = checksum.wrapping_add(work());
        rounds += 1;
    }
    std::hint::black_box(checksum);
    (rounds, start.elapsed().as_secs_f64())
}

/// Runs `work` repeatedly for ~`budget_ms`, returning queries/second.
fn measure_qps(queries: usize, budget_ms: u64, work: impl FnMut() -> usize) -> f64 {
    let (rounds, elapsed) = measure_rounds(budget_ms, work);
    (rounds as f64 * queries as f64) / elapsed
}

/// Runs `work` repeatedly for ~`budget_ms`, returning milliseconds per
/// round.
fn measure_ms(budget_ms: u64, work: impl FnMut() -> usize) -> f64 {
    let (rounds, elapsed) = measure_rounds(budget_ms, work);
    elapsed * 1e3 / rounds as f64
}

/// Open-loop served p99 (µs) against one published snapshot: requests
/// arrive on a fixed grid (a slow answer never delays the next
/// arrival), a harvester thread timestamps each completion at its
/// condvar wake. The trimmed form of the `latency` section's harness,
/// shared by the static and adaptive arms of the `adaptive` section so
/// the comparison is apples to apples.
fn served_p99_us(
    snapshot: bonsai_core::RouterSnapshot,
    queries: &[bonsai_geom::Point3],
    radius: f32,
    rate: u64,
    window_ms: u64,
) -> f64 {
    let publisher = std::sync::Arc::new(bonsai_core::EpochPublisher::new(snapshot));
    let server = bonsai_serve::Server::new(
        publisher,
        bonsai_serve::ServeConfig {
            queue_capacity: 8192,
            max_batch: 32,
        },
    );
    for &q in queries.iter().take(16) {
        let _ = server.radius_query(q, radius); // warm the executor
    }
    let total_arrivals = (rate * window_ms / 1000).max(1) as usize;
    let gap = std::time::Duration::from_nanos(1_000_000_000 / rate);
    struct InFlight {
        queue: std::collections::VecDeque<(Instant, bonsai_serve::Ticket)>,
        closed: bool,
    }
    let in_flight = std::sync::Mutex::new(InFlight {
        queue: std::collections::VecDeque::new(),
        closed: false,
    });
    let handoff = std::sync::Condvar::new();
    let mut latencies_us: Vec<f64> = std::thread::scope(|s| {
        let harvester = s.spawn(|| {
            let mut latencies = Vec::with_capacity(total_arrivals);
            loop {
                let entry = {
                    let mut q = in_flight.lock().expect("in-flight queue");
                    loop {
                        if let Some(entry) = q.queue.pop_front() {
                            break Some(entry);
                        }
                        if q.closed {
                            break None;
                        }
                        q = handoff.wait(q).expect("in-flight queue");
                    }
                };
                let Some((submitted, ticket)) = entry else {
                    return latencies;
                };
                ticket.wait().expect("bench query served");
                latencies.push((Instant::now() - submitted).as_secs_f64() * 1e6);
            }
        });
        let pacer_start = Instant::now();
        for k in 0..total_arrivals {
            let scheduled = pacer_start + gap * k as u32;
            loop {
                let now = Instant::now();
                if now >= scheduled {
                    break;
                }
                let remaining = scheduled - now;
                if remaining > std::time::Duration::from_micros(300) {
                    std::thread::sleep(remaining - std::time::Duration::from_micros(200));
                } else {
                    std::thread::yield_now();
                }
            }
            if let Ok(ticket) = server.submit(queries[k % queries.len()], radius) {
                in_flight
                    .lock()
                    .expect("in-flight queue")
                    .queue
                    .push_back((Instant::now(), ticket));
                handoff.notify_all();
            }
        }
        in_flight.lock().expect("in-flight queue").closed = true;
        handoff.notify_all();
        harvester.join().expect("harvester thread")
    });
    latencies_us.sort_unstable_by(|a, b| a.total_cmp(b));
    let idx = ((latencies_us.len() as f64 - 1.0) * 0.99).round() as usize;
    latencies_us[idx]
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (cloud_n, query_n, budget_ms) = if quick {
        (BATCH_CLOUD / 4, BATCH_QUERIES / 4, 120)
    } else {
        (BATCH_CLOUD, BATCH_QUERIES, 900)
    };

    let cloud = urban_cloud(cloud_n);
    let mut sim = SimEngine::disabled();
    let tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
    let queries = batch_queries(&cloud, query_n);
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get());

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"radius_batch\",");
    let _ = writeln!(json, "  \"cloud_points\": {cloud_n},");
    let _ = writeln!(json, "  \"queries\": {query_n},");
    let _ = writeln!(json, "  \"radius\": {RADIUS},");
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"quick\": {quick},");
    let _ = writeln!(json, "  \"modes\": {{");

    for (mi, (mode, baseline)) in [("baseline", true), ("bonsai", false)]
        .into_iter()
        .enumerate()
    {
        // Seed-shaped per-query path: independent instrumented-API
        // searches (fresh vectors; fresh processor per search under
        // Bonsai), simulator disabled.
        let mut machine = Machine::new();
        let mut out = Vec::new();
        let mut stats = SearchStats::default();
        let per_query_qps = measure_qps(query_n, budget_ms, || {
            let mut total = 0;
            for &q in &queries {
                if baseline {
                    total += tree.kd_tree().radius_search_simple(q, RADIUS).len();
                } else {
                    tree.radius_search(&mut sim, &mut machine, q, RADIUS, &mut out, &mut stats);
                    total += out.len();
                }
            }
            total
        });

        let engine = if baseline {
            RadiusSearchEngine::baseline(tree.kd_tree())
        } else {
            RadiusSearchEngine::bonsai(&tree)
        };
        let mut batch = QueryBatch::new();
        let batched_qps = measure_qps(query_n, budget_ms, || {
            engine.search_batch(&queries, RADIUS, &mut batch);
            batch.total_matches()
        });

        #[cfg(feature = "parallel")]
        let parallel_qps = {
            let mut batch = QueryBatch::new();
            measure_qps(query_n, budget_ms, || {
                engine.search_batch_parallel(&queries, RADIUS, &mut batch, 0);
                batch.total_matches()
            })
        };
        #[cfg(not(feature = "parallel"))]
        let parallel_qps = batched_qps;

        // Exactness spot check: the batched engine must reproduce the
        // per-query instrumented results.
        engine.search_batch(&queries, RADIUS, &mut batch);
        for (i, &q) in queries.iter().enumerate().step_by(37) {
            let expect = if baseline {
                tree.kd_tree().radius_search_simple(q, RADIUS)
            } else {
                tree.radius_search_simple(q, RADIUS)
            };
            assert_eq!(batch.results(i), &expect[..], "{mode} query {i} diverged");
        }

        let speedup = batched_qps / per_query_qps;
        let parallel_speedup = parallel_qps / per_query_qps;
        println!(
            "{mode:>8}: per-query {per_query_qps:>12.0} q/s | batched {batched_qps:>12.0} q/s \
             ({speedup:.2}x) | parallel {parallel_qps:>12.0} q/s ({parallel_speedup:.2}x)"
        );
        let _ = writeln!(json, "    \"{mode}\": {{");
        let _ = writeln!(json, "      \"per_query_qps\": {per_query_qps:.0},");
        let _ = writeln!(json, "      \"batched_qps\": {batched_qps:.0},");
        let _ = writeln!(json, "      \"batched_parallel_qps\": {parallel_qps:.0},");
        let _ = writeln!(json, "      \"batched_speedup\": {speedup:.3},");
        let _ = writeln!(
            json,
            "      \"batched_parallel_speedup\": {parallel_speedup:.3}"
        );
        let _ = writeln!(json, "    }}{}", if mi == 0 { "," } else { "" });
    }
    let _ = writeln!(json, "  }},");

    // ------------------------------------------------------------------
    // Sharded serving: per-frame build latency (single tree vs. K-shard
    // router, sequential and parallel) and router batch throughput.
    // Each arm pays one copy of the cloud: the single tree consumes a
    // clone, the router copies the points into its shards.
    // ------------------------------------------------------------------
    let _ = writeln!(json, "  \"sharded\": {{");
    let _ = writeln!(json, "    \"shards\": {SHARDS},");

    let seq_cfg = ShardConfig {
        shards: SHARDS,
        build_threads: 1,
    };
    let par_cfg = ShardConfig {
        shards: SHARDS,
        build_threads: 0,
    };
    let build_budget = budget_ms / 2;
    let _ = writeln!(json, "    \"build\": {{");
    for (mi, mode) in ["baseline", "bonsai"].into_iter().enumerate() {
        let baseline = mode == "baseline";
        let single_ms = measure_ms(build_budget, || {
            let mut sim = SimEngine::disabled();
            if baseline {
                KdTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim)
                    .build_stats()
                    .num_leaves as usize
            } else {
                BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim)
                    .kd_tree()
                    .build_stats()
                    .num_leaves as usize
            }
        });
        let cloud_ref = &cloud;
        let sharded_build = |cfg: ShardConfig| {
            move || {
                let router = if baseline {
                    ShardRouter::baseline(cloud_ref, KdTreeConfig::default(), cfg)
                } else {
                    ShardRouter::bonsai(cloud_ref, KdTreeConfig::default(), cfg)
                };
                router.build_stats().num_leaves as usize
            }
        };
        let seq_ms = measure_ms(build_budget, sharded_build(seq_cfg));
        let par_ms = measure_ms(build_budget, sharded_build(par_cfg));
        println!(
            "{mode:>8} build: single {single_ms:>7.2} ms | sharded seq {seq_ms:>7.2} ms \
             ({:.2}x) | sharded par {par_ms:>7.2} ms ({:.2}x)",
            single_ms / seq_ms,
            single_ms / par_ms,
        );
        let _ = writeln!(json, "      \"{mode}\": {{");
        let _ = writeln!(json, "        \"single_tree_ms\": {single_ms:.3},");
        let _ = writeln!(json, "        \"sharded_seq_ms\": {seq_ms:.3},");
        let _ = writeln!(json, "        \"sharded_parallel_ms\": {par_ms:.3},");
        let _ = writeln!(
            json,
            "        \"parallel_build_speedup\": {:.3}",
            single_ms / par_ms
        );
        let _ = writeln!(json, "      }}{}", if mi == 0 { "," } else { "" });
    }
    let _ = writeln!(json, "    }},");

    let _ = writeln!(json, "    \"modes\": {{");
    for (mi, mode) in ["baseline", "bonsai"].into_iter().enumerate() {
        let baseline = mode == "baseline";
        let router = if baseline {
            ShardRouter::baseline(&cloud, KdTreeConfig::default(), par_cfg)
        } else {
            ShardRouter::bonsai(&cloud, KdTreeConfig::default(), par_cfg)
        };
        let mut batch = QueryBatch::new();
        let router_qps = measure_qps(query_n, budget_ms, || {
            router.search_batch(&queries, RADIUS, &mut batch);
            batch.total_matches()
        });
        #[cfg(feature = "parallel")]
        let router_parallel_qps = {
            let mut batch = QueryBatch::new();
            measure_qps(query_n, budget_ms, || {
                router.search_batch_parallel(&queries, RADIUS, &mut batch, 0);
                batch.total_matches()
            })
        };
        #[cfg(not(feature = "parallel"))]
        let router_parallel_qps = router_qps;

        // Exactness spot check: the router must reproduce the
        // single-tree engine's neighbor sets bit-for-bit (the router
        // emits canonical ascending-index order).
        router.search_batch(&queries, RADIUS, &mut batch);
        for (i, &q) in queries.iter().enumerate().step_by(37) {
            let mut expect = if baseline {
                tree.kd_tree().radius_search_simple(q, RADIUS)
            } else {
                tree.radius_search_simple(q, RADIUS)
            };
            expect.sort_unstable_by_key(|n| n.index);
            assert_eq!(batch.results(i), &expect[..], "{mode} query {i} diverged");
        }

        println!(
            "{mode:>8} router: batched {router_qps:>12.0} q/s | parallel \
             {router_parallel_qps:>12.0} q/s"
        );
        let _ = writeln!(json, "      \"{mode}\": {{");
        let _ = writeln!(json, "        \"router_qps\": {router_qps:.0},");
        let _ = writeln!(
            json,
            "        \"router_parallel_qps\": {router_parallel_qps:.0}"
        );
        let _ = writeln!(json, "      }}{}", if mi == 0 { "," } else { "" });
    }
    let _ = writeln!(json, "    }}");
    let _ = writeln!(json, "  }},");

    // ------------------------------------------------------------------
    // Adaptive sharding: the Gaussian-around-ego drifting-ego stream
    // (the AD serving pattern) against the static median-cut router vs
    // the load-adaptive one. The adaptive arm keeps `adapt_step` in the
    // timed loop — steady-state policy cost is billed, not hidden — and
    // is warmed with untimed laps first, exactly how a long-running
    // serving process reaches its converged topology. The uniform
    // stream then bounds the policy's overhead when there is no skew to
    // exploit, and the exactness sweep pins every mode × SIMD arm to
    // the single-tree engine bit for bit.
    // ------------------------------------------------------------------
    let _ = writeln!(json, "  \"adaptive\": {{");
    // Serving-scale cloud: adaptive sharding is about long-lived maps
    // an order of magnitude beyond one frame's crop, where a hot
    // shard's footprint decides whether the skewed stream runs from
    // cache or from memory. At `BATCH_CLOUD` the per-shard trees are so
    // shallow that fixed per-query dispatch hides any topology effect.
    let acloud = urban_cloud(cloud_n * 8);
    let auniform = batch_queries(&acloud, query_n);
    let skew = skewed_queries(query_n * 4, 42);
    let windows = 16usize;
    let win_len = (skew.len() / windows).max(1);
    // Long-memory decay: at 16 windows per ego lap, 0.95 keeps ~20
    // windows of profile, so the policy sees the whole drifting-ego
    // corridor as stationary instead of chasing the ego window to
    // window (short memory makes it thrash: split ahead of the ego,
    // merge behind it, every step a rebuild).
    let policy = ShardPolicy {
        decay: 0.95,
        max_shards: 64,
        min_split_points: 128,
        min_queries: 32.0,
        split_ratio: 1.5,
        merge_ratio: 0.15,
        ..ShardPolicy::default()
    };
    let _ = writeln!(json, "    \"shards_start\": {SHARDS},");
    let _ = writeln!(json, "    \"skew_std\": {SKEW_STD},");
    let _ = writeln!(json, "    \"skew_queries\": {},", skew.len());
    let _ = writeln!(json, "    \"windows\": {windows},");
    let _ = writeln!(json, "    \"max_shards\": {},", policy.max_shards);

    let static_router = ShardRouter::bonsai(
        &acloud,
        KdTreeConfig::default(),
        ShardConfig::with_shards(SHARDS),
    );
    let mut batch = QueryBatch::new();
    let static_skew_qps = measure_qps(skew.len(), budget_ms, || {
        let mut total = 0;
        for w in skew.chunks(win_len) {
            static_router.search_batch(w, RADIUS, &mut batch);
            total += batch.total_matches();
        }
        total
    });

    let mut adaptive_router = ShardRouter::bonsai(
        &acloud,
        KdTreeConfig::default(),
        ShardConfig::with_shards(SHARDS),
    );
    // Untimed warm-up laps: the policy converges its topology along the
    // ego corridor before the clock starts.
    for _ in 0..6 {
        for w in skew.chunks(win_len) {
            adaptive_router.search_batch(w, RADIUS, &mut batch);
            adaptive_router.adapt_step(&policy, 0);
        }
    }
    let adaptive_skew_qps = measure_qps(skew.len(), budget_ms, || {
        let mut total = 0;
        for w in skew.chunks(win_len) {
            adaptive_router.search_batch(w, RADIUS, &mut batch);
            adaptive_router.adapt_step(&policy, 0);
            total += batch.total_matches();
        }
        total
    });
    let adaptive_report = adaptive_router.load_report();

    // Exactness: the adapted topology answers the skewed stream
    // bit-identically to the static router (both canonical ascending
    // global order — same cloud, same indices).
    {
        let mut expect = QueryBatch::new();
        static_router.search_batch(&skew, RADIUS, &mut expect);
        adaptive_router.search_batch(&skew, RADIUS, &mut batch);
        for i in 0..skew.len() {
            assert_eq!(
                batch.results(i),
                expect.results(i),
                "adaptive skew query {i} diverged"
            );
        }
    }

    let static_uniform_qps = measure_qps(query_n, budget_ms, || {
        static_router.search_batch(&auniform, RADIUS, &mut batch);
        batch.total_matches()
    });
    let mut uniform_router = ShardRouter::bonsai(
        &acloud,
        KdTreeConfig::default(),
        ShardConfig::with_shards(SHARDS),
    );
    let adaptive_uniform_qps = measure_qps(query_n, budget_ms, || {
        uniform_router.search_batch(&auniform, RADIUS, &mut batch);
        uniform_router.adapt_step(&policy, 0);
        batch.total_matches()
    });

    // Shard-per-worker serving throughput, the headline: each worker
    // owns the shard slice `worker_partition` assigns it (LPT over the
    // observed load profile) and serves the whole stream against only
    // that slice — the execution model of a distributed or
    // accelerator-offloaded deployment, where a shard lives in one
    // place and cannot be half-owned. Every worker's pass is measured
    // for real; the makespan (slowest worker, plus the adaptive arm's
    // measured control-plane `adapt_step`) is what W concurrent
    // workers' wall clock would be. Under skew the static topology's
    // hot shard is one indivisible slice — the batch serializes on its
    // owner — while the adapted topology spreads the same load across
    // all W slices.
    const WORKERS: usize = 8;
    let worker_budget = budget_ms / 2;
    // Frame-barrier makespan: the pipeline serves windows in order, so
    // one stream pass costs Σ over windows of (slowest worker in that
    // window) — a worker idle in this window cannot lend its core to
    // the next one. Each (worker, window) cell is measured for real
    // and averaged over repeated passes.
    let worker_makespan_ms =
        |router: &ShardRouter, stream: &[bonsai_geom::Point3], chunk: usize| -> f64 {
            let partition = router.worker_partition(WORKERS);
            let windows: Vec<&[bonsai_geom::Point3]> = stream.chunks(chunk).collect();
            let mut cell_ms = vec![vec![0.0f64; windows.len()]; partition.len()];
            let mut b = QueryBatch::new();
            for (k, own) in partition.iter().enumerate() {
                for wch in &windows {
                    router.search_batch_shards(wch, RADIUS, &mut b, own); // warm
                }
                let start = Instant::now();
                let mut passes = 0u32;
                while start.elapsed().as_millis() < u128::from(worker_budget) {
                    for (w, wch) in windows.iter().enumerate() {
                        let t0 = Instant::now();
                        router.search_batch_shards(wch, RADIUS, &mut b, own);
                        std::hint::black_box(b.total_matches());
                        cell_ms[k][w] += t0.elapsed().as_secs_f64() * 1e3;
                    }
                    passes += 1;
                }
                for v in &mut cell_ms[k] {
                    *v /= f64::from(passes.max(1));
                }
            }
            (0..windows.len())
                .map(|w| cell_ms.iter().map(|row| row[w]).fold(0.0f64, f64::max))
                .sum()
        };
    let static_skew_worker_ms = worker_makespan_ms(&static_router, &skew, win_len);
    let adaptive_skew_worker_ms = worker_makespan_ms(&adaptive_router, &skew, win_len);
    let static_uniform_worker_ms = worker_makespan_ms(&static_router, &auniform, auniform.len());
    let adaptive_uniform_worker_ms = worker_makespan_ms(&uniform_router, &auniform, auniform.len());
    // The adaptive arms bill the policy's steady-state control plane:
    // one converged `adapt_step` per pass, serialized after the
    // workers (it owns the topology).
    let adapt_ms = measure_ms(worker_budget / 2, || {
        adaptive_router.adapt_step(&policy, 0);
        1
    });
    let static_skew_worker_qps = skew.len() as f64 / (static_skew_worker_ms / 1e3);
    let adaptive_skew_worker_qps = skew.len() as f64 / ((adaptive_skew_worker_ms + adapt_ms) / 1e3);
    let static_uniform_worker_qps = auniform.len() as f64 / (static_uniform_worker_ms / 1e3);
    let adaptive_uniform_worker_qps =
        auniform.len() as f64 / ((adaptive_uniform_worker_ms + adapt_ms) / 1e3);

    // Served open-loop p99 on the skewed stream: the adaptive topology
    // must be no worse at the tail than the static one.
    let p99_rate = 2000u64;
    let p99_window = if quick { 250 } else { 1500 };
    let static_p99 = served_p99_us(
        static_router.snapshot(),
        &skew,
        RADIUS,
        p99_rate,
        p99_window,
    );
    let adaptive_p99 = served_p99_us(
        adaptive_router.snapshot(),
        &skew,
        RADIUS,
        p99_rate,
        p99_window,
    );

    let skew_speedup = adaptive_skew_worker_qps / static_skew_worker_qps;
    let uniform_ratio = adaptive_uniform_worker_qps / static_uniform_worker_qps;
    let skew_speedup_seq = adaptive_skew_qps / static_skew_qps;
    let uniform_ratio_seq = adaptive_uniform_qps / static_uniform_qps;
    let populated = (0..adaptive_router.num_shards())
        .filter(|&s| !adaptive_router.shard_points(s).is_empty())
        .count();
    println!(
        "adaptive  skew: static {static_skew_worker_qps:>12.0} q/s | adaptive \
         {adaptive_skew_worker_qps:>12.0} q/s ({skew_speedup:.2}x) over {WORKERS} workers | \
         {} splits {} merges, {populated} shards",
        adaptive_report.splits, adaptive_report.merges,
    );
    println!(
        "       uniform: static {static_uniform_worker_qps:>12.0} q/s | adaptive \
         {adaptive_uniform_worker_qps:>12.0} q/s ({uniform_ratio:.3}) | served p99 \
         {static_p99:>8.1} → {adaptive_p99:>8.1} µs | 1-thread skew {skew_speedup_seq:.2}x \
         uniform {uniform_ratio_seq:.3}"
    );
    let _ = writeln!(json, "    \"workers\": {WORKERS},");
    let _ = writeln!(
        json,
        "    \"static_skew_worker_qps\": {static_skew_worker_qps:.0},"
    );
    let _ = writeln!(
        json,
        "    \"adaptive_skew_worker_qps\": {adaptive_skew_worker_qps:.0},"
    );
    let _ = writeln!(json, "    \"skew_speedup\": {skew_speedup:.3},");
    let _ = writeln!(
        json,
        "    \"static_uniform_worker_qps\": {static_uniform_worker_qps:.0},"
    );
    let _ = writeln!(
        json,
        "    \"adaptive_uniform_worker_qps\": {adaptive_uniform_worker_qps:.0},"
    );
    let _ = writeln!(json, "    \"uniform_ratio\": {uniform_ratio:.3},");
    let _ = writeln!(json, "    \"adapt_step_ms\": {adapt_ms:.4},");
    let _ = writeln!(json, "    \"static_skew_qps\": {static_skew_qps:.0},");
    let _ = writeln!(json, "    \"adaptive_skew_qps\": {adaptive_skew_qps:.0},");
    let _ = writeln!(json, "    \"skew_speedup_seq\": {skew_speedup_seq:.3},");
    let _ = writeln!(json, "    \"static_uniform_qps\": {static_uniform_qps:.0},");
    let _ = writeln!(
        json,
        "    \"adaptive_uniform_qps\": {adaptive_uniform_qps:.0},"
    );
    let _ = writeln!(json, "    \"uniform_ratio_seq\": {uniform_ratio_seq:.3},");
    let _ = writeln!(json, "    \"static_served_p99_us\": {static_p99:.1},");
    let _ = writeln!(json, "    \"adaptive_served_p99_us\": {adaptive_p99:.1},");
    let _ = writeln!(json, "    \"splits\": {},", adaptive_report.splits);
    let _ = writeln!(json, "    \"merges\": {},", adaptive_report.merges);
    let _ = writeln!(json, "    \"rejected\": {},", adaptive_report.rejected);
    let _ = writeln!(json, "    \"populated_shards\": {populated},");

    // Exactness across all three modes, both SIMD arms: an adapted
    // router must reproduce the single-tree engine's neighbor sets bit
    // for bit (canonical ascending order), scalar and vector alike.
    {
        let ov = simd::scalar_override();
        let probes: Vec<_> = skew.iter().copied().step_by(17).collect();
        for mode in ["baseline", "bonsai", "software_codec"] {
            let mut r = match mode {
                "baseline" => ShardRouter::baseline(
                    &cloud,
                    KdTreeConfig::default(),
                    ShardConfig::with_shards(SHARDS),
                ),
                "bonsai" => ShardRouter::bonsai(
                    &cloud,
                    KdTreeConfig::default(),
                    ShardConfig::with_shards(SHARDS),
                ),
                _ => ShardRouter::software_codec(
                    &cloud,
                    KdTreeConfig::default(),
                    ShardConfig::with_shards(SHARDS),
                ),
            };
            for w in skew.chunks(win_len) {
                r.search_batch(w, RADIUS, &mut batch);
                r.adapt_step(&policy, 0);
            }
            let engine = match mode {
                "baseline" => RadiusSearchEngine::baseline(tree.kd_tree()),
                "bonsai" => RadiusSearchEngine::bonsai(&tree),
                _ => RadiusSearchEngine::software_codec(&tree),
            };
            let mut expect = QueryBatch::new();
            for &scalar in &[true, false] {
                ov.set(scalar);
                engine.search_batch(&probes, RADIUS, &mut expect);
                r.search_batch(&probes, RADIUS, &mut batch);
                for (i, _) in probes.iter().enumerate() {
                    let mut want = expect.results(i).to_vec();
                    want.sort_unstable_by_key(|n| n.index);
                    assert_eq!(
                        batch.results(i),
                        &want[..],
                        "{mode} scalar={scalar} adaptive probe {i} diverged"
                    );
                }
            }
        }
        ov.set(false);
    }
    let _ = writeln!(json, "    \"exactness_modes\": 3,");
    let _ = writeln!(json, "    \"exactness_simd_arms\": 2");
    let _ = writeln!(json, "  }},");

    // ------------------------------------------------------------------
    // SIMD leaf sweeps: scalar vs the runtime-detected vector backend,
    // per mode. Two views: the isolated sweep kernel (`sweep_leaf`
    // over every leaf, points/s — the number the ≥1.5× acceptance
    // target reads) and the whole batched search (traversal included,
    // q/s). The scalar rows run through the process-wide override, so
    // one SIMD-enabled binary measures both paths.
    // ------------------------------------------------------------------
    let _ = writeln!(json, "  \"simd\": {{");
    let _ = writeln!(json, "    \"backend\": \"{}\",", simd::active_backend());
    let _ = writeln!(json, "    \"lanes\": {},", simd::LANES);
    // Each sweep query's visit list is collected once up front (the
    // traversal half), so the measurement times exactly the leaf-sweep
    // kernel over the leaf mix real queries visit — the same workload
    // as the `leaf_sweep` criterion group.
    let sweep_radius = SWEEP_RADIUS;
    let _ = writeln!(json, "    \"sweep_radius\": {sweep_radius},");
    let sweep_queries = batch_queries(&cloud, 32);
    let (sweep_sets, sweep_points) =
        collect_sweep_sets(tree.kd_tree(), &sweep_queries, sweep_radius);
    let sweep_budget = budget_ms / 2;
    let ov = simd::scalar_override();
    for (mi, mode) in ["baseline", "bonsai"].into_iter().enumerate() {
        let baseline = mode == "baseline";
        let engine = if baseline {
            RadiusSearchEngine::baseline(tree.kd_tree())
        } else {
            RadiusSearchEngine::bonsai(&tree)
        };
        let sweep_pps = |force_scalar: bool| {
            ov.set(force_scalar);
            let mut out = Vec::new();
            let mut stats = SearchStats::default();
            let (rounds, elapsed) = measure_rounds(sweep_budget, || {
                let mut total = 0usize;
                for (q, visited) in sweep_queries.iter().zip(&sweep_sets) {
                    out.clear();
                    engine.sweep_visited(visited, *q, sweep_radius, &mut out, &mut stats);
                    total += out.len();
                }
                total
            });
            // One warm-up round runs untimed inside measure_rounds.
            (rounds as f64 * sweep_points as f64) / elapsed
        };
        let scalar_sweep_pps = sweep_pps(true);
        let simd_sweep_pps = sweep_pps(false);
        let mut batch = QueryBatch::new();
        let mut batched = |force_scalar: bool| {
            ov.set(force_scalar);
            measure_qps(query_n, sweep_budget, || {
                engine.search_batch(&queries, RADIUS, &mut batch);
                batch.total_matches()
            })
        };
        let scalar_qps = batched(true);
        let simd_qps = batched(false);
        ov.set(false);

        // Exactness spot check: both backends must agree bit-for-bit
        // (the property suite proves it; the bench keeps it honest on
        // the bench workload too).
        let mut scalar_batch = QueryBatch::new();
        ov.set(true);
        engine.search_batch(&queries, RADIUS, &mut scalar_batch);
        ov.set(false);
        engine.search_batch(&queries, RADIUS, &mut batch);
        for i in (0..queries.len()).step_by(37) {
            assert_eq!(
                batch.results(i),
                scalar_batch.results(i),
                "{mode} query {i}: simd diverged from scalar"
            );
        }

        let sweep_speedup = simd_sweep_pps / scalar_sweep_pps;
        let batched_speedup = simd_qps / scalar_qps;
        println!(
            "{mode:>8} sweep: scalar {scalar_sweep_pps:>12.0} pts/s | {} \
             {simd_sweep_pps:>12.0} pts/s ({sweep_speedup:.2}x) | search {scalar_qps:>9.0} → \
             {simd_qps:>9.0} q/s ({batched_speedup:.2}x)",
            simd::active_backend(),
        );
        let _ = writeln!(json, "    \"{mode}\": {{");
        let _ = writeln!(json, "      \"scalar_sweep_pps\": {scalar_sweep_pps:.0},");
        let _ = writeln!(json, "      \"simd_sweep_pps\": {simd_sweep_pps:.0},");
        let _ = writeln!(json, "      \"sweep_speedup\": {sweep_speedup:.3},");
        let _ = writeln!(json, "      \"scalar_batched_qps\": {scalar_qps:.0},");
        let _ = writeln!(json, "      \"simd_batched_qps\": {simd_qps:.0},");
        let _ = writeln!(json, "      \"batched_speedup\": {batched_speedup:.3}");
        let _ = writeln!(json, "    }}{}", if mi == 0 { "," } else { "" });
    }
    drop(ov);
    let _ = writeln!(json, "  }},");

    // ------------------------------------------------------------------
    // Streaming churn: per-frame incremental update (delete + insert +
    // lazy per-leaf re-bake) vs. full rebuild of the Bonsai tree, at
    // 1 % / 5 % / 20 % per-frame churn. The incremental arm keeps one
    // mutable tree alive across frames — the ikd-style streaming path.
    // ------------------------------------------------------------------
    let _ = writeln!(json, "  \"streaming\": {{");
    let churn_budget = budget_ms / 2;
    let insert_source = urban_cloud(cloud_n * 2);
    for (ci, pct) in [1usize, 5, 20].into_iter().enumerate() {
        let churn_n = (cloud_n * pct / 100).max(1);

        let rebuild_ms = measure_ms(churn_budget, || {
            let mut sim = SimEngine::disabled();
            BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim)
                .kd_tree()
                .build_stats()
                .num_leaves as usize
        });

        let mut sim = SimEngine::disabled();
        let mut tree = BonsaiTree::build(cloud.clone(), KdTreeConfig::default(), &mut sim);
        let mut live: Vec<u32> = (0..cloud_n as u32).collect();
        let mut round = 0usize;
        let incremental_ms = measure_ms(churn_budget, || {
            let mut sim = SimEngine::disabled();
            for j in 0..churn_n {
                let pos = (round.wrapping_mul(31) + j * 7919) % live.len();
                tree.delete(&mut sim, live[pos]);
                let p = insert_source[(round * churn_n + j) % insert_source.len()];
                live[pos] = tree.insert(&mut sim, p).expect("finite insert");
            }
            round += 1;
            tree.commit(&mut sim)
        });

        // Exactness spot check: the churned tree must match a fresh
        // rebuild over its live points (sorted; indices remapped).
        {
            let live_ids: Vec<u32> = tree.kd_tree().live_indices().collect();
            let live_pts: Vec<_> = live_ids
                .iter()
                .map(|&i| tree.kd_tree().points()[i as usize])
                .collect();
            let fresh = BonsaiTree::build(live_pts, KdTreeConfig::default(), &mut sim);
            for (qi, &q) in queries.iter().enumerate().step_by(257) {
                let mut got = tree.radius_search_simple(q, RADIUS);
                got.sort_unstable_by_key(|n| n.index);
                let mut expect = fresh.radius_search_simple(q, RADIUS);
                for n in &mut expect {
                    n.index = live_ids[n.index as usize];
                }
                expect.sort_unstable_by_key(|n| n.index);
                assert_eq!(got, expect, "churn {pct}% query {qi} diverged");
            }
        }

        let speedup = rebuild_ms / incremental_ms;
        let mstats = tree.kd_tree().mutation_stats();
        let frag =
            tree.kd_tree().garbage_slots() as f64 / tree.kd_tree().vind().len().max(1) as f64;
        println!(
            "churn {pct:>2}%: incremental {incremental_ms:>7.2} ms/frame | rebuild \
             {rebuild_ms:>7.2} ms/frame ({speedup:.2}x) | {} subtree rebuilds, {:.0}% frag",
            mstats.subtree_rebuilds,
            frag * 100.0
        );
        let _ = writeln!(json, "    \"{pct}pct\": {{");
        let _ = writeln!(json, "      \"churn_points\": {churn_n},");
        let _ = writeln!(json, "      \"incremental_ms\": {incremental_ms:.3},");
        let _ = writeln!(json, "      \"rebuild_ms\": {rebuild_ms:.3},");
        let _ = writeln!(json, "      \"incremental_speedup\": {speedup:.3},");
        let _ = writeln!(
            json,
            "      \"subtree_rebuilds\": {},",
            mstats.subtree_rebuilds
        );
        let _ = writeln!(json, "      \"garbage_fraction\": {frag:.4}");
        let _ = writeln!(json, "    }}{}", if ci < 2 { "," } else { "" });
    }
    let _ = writeln!(json, "  }},");

    // ------------------------------------------------------------------
    // Long-stream soak: 200 churn frames through a sharded Bonsai
    // router, with the rolling compaction policy off vs. on. The
    // policy-off arm shows the unbounded fragmentation a long stream
    // accumulates (garbage slots + dead points never reclaimed); the
    // policy-on arm bounds both with one amortized shard check per
    // frame. Exactness is spot-checked at the end of each arm.
    // ------------------------------------------------------------------
    let _ = writeln!(json, "  \"soak\": {{");
    let soak_frames = 200usize;
    let soak_churn = (cloud_n / 50).max(1); // 2 % of the cloud per frame
    let _ = writeln!(json, "    \"frames\": {soak_frames},");
    let _ = writeln!(json, "    \"churn_points\": {soak_churn},");
    let _ = writeln!(json, "    \"shards\": {SHARDS},");
    for (ai, policy) in [None, Some(CompactionPolicy::default())]
        .into_iter()
        .enumerate()
    {
        let label = if policy.is_some() {
            "policy_on"
        } else {
            "policy_off"
        };
        let mut router = ShardRouter::bonsai(
            &cloud,
            KdTreeConfig::default(),
            ShardConfig::with_shards(SHARDS),
        );
        let mut live: Vec<u32> = (0..cloud_n as u32).collect();
        // Coordinates tracked per slot: shard rebuilds retire dead
        // globals into the free list and later inserts recycle them,
        // so a global index no longer encodes which insert it was.
        let mut live_coords = cloud.clone();
        let mut max_ratio = 0.0f64;
        let mut compactions = 0usize;
        let start = Instant::now();
        for frame in 0..soak_frames {
            for j in 0..soak_churn {
                let pos = (frame.wrapping_mul(31) + j * 7919) % live.len();
                router.delete(live[pos]);
                let p = insert_source[(frame * soak_churn + j) % insert_source.len()];
                live[pos] = router.insert(p).expect("finite insert");
                live_coords[pos] = p;
            }
            router.commit();
            if let Some(policy) = &policy {
                if router.compact_next(policy).is_some() {
                    compactions += 1;
                }
            }
            let ratio = router.garbage_slots() as f64 / router.slot_count().max(1) as f64;
            max_ratio = max_ratio.max(ratio);
        }
        let ms_per_frame = start.elapsed().as_secs_f64() * 1e3 / soak_frames as f64;
        let final_ratio = router.garbage_slots() as f64 / router.slot_count().max(1) as f64;
        let resident_mb = router.resident_bytes() as f64 / (1024.0 * 1024.0);

        // Exactness spot check: the soaked router must still match a
        // fresh single tree over its live points (indices remapped).
        {
            let mut pairs: Vec<(u32, _)> = live
                .iter()
                .copied()
                .zip(live_coords.iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(g, _)| g);
            let sorted_live: Vec<u32> = pairs.iter().map(|&(g, _)| g).collect();
            let live_pts: Vec<_> = pairs.iter().map(|&(_, p)| p).collect();
            let mut sim = SimEngine::disabled();
            let fresh = BonsaiTree::build(live_pts, KdTreeConfig::default(), &mut sim);
            let mut batch = QueryBatch::new();
            let probes: Vec<_> = queries.iter().copied().step_by(97).collect();
            router.search_batch(&probes, RADIUS, &mut batch);
            for (i, &q) in probes.iter().enumerate() {
                let mut expect = fresh.radius_search_simple(q, RADIUS);
                for n in &mut expect {
                    n.index = sorted_live[n.index as usize];
                }
                expect.sort_unstable_by_key(|n| n.index);
                assert_eq!(batch.results(i), &expect[..], "{label} probe {i} diverged");
            }
        }

        println!(
            "soak {label:>10}: garbage ratio final {final_ratio:.3} (max {max_ratio:.3}) | \
             resident {resident_mb:>7.2} MiB | {compactions:>3} shard rebuilds | \
             {ms_per_frame:.2} ms/frame"
        );
        let _ = writeln!(json, "    \"{label}\": {{");
        let _ = writeln!(json, "      \"final_garbage_ratio\": {final_ratio:.4},");
        let _ = writeln!(json, "      \"max_garbage_ratio\": {max_ratio:.4},");
        let _ = writeln!(
            json,
            "      \"resident_bytes\": {},",
            router.resident_bytes()
        );
        let _ = writeln!(json, "      \"shard_rebuilds\": {compactions},");
        let _ = writeln!(json, "      \"ms_per_frame\": {ms_per_frame:.3}");
        let _ = writeln!(json, "    }}{}", if ai == 0 { "," } else { "" });
    }
    let _ = writeln!(json, "  }},");

    // ------------------------------------------------------------------
    // Open-loop serving latency: clients arrive at a fixed rate against
    // a `bonsai-serve` executor over published router epochs, and each
    // request's latency is completion − *scheduled* arrival (open-loop:
    // a slow answer does not delay the next arrival, so queueing delay
    // is charged honestly). Two arrival rates, each measured churn-free
    // and again with a concurrent churn thread mutating the router and
    // publishing fresh epochs — the snapshot-isolation design means
    // ingest must cost queue time, never correctness or a stall.
    // ------------------------------------------------------------------
    let _ = writeln!(json, "  \"latency\": {{");
    let rates: [u64; 2] = [500, 2000];
    let window_ms: u64 = if quick { 250 } else { 2000 };
    let _ = writeln!(json, "    \"rates_per_sec\": [{}, {}],", rates[0], rates[1]);
    let _ = writeln!(json, "    \"window_ms\": {window_ms},");
    let _ = writeln!(json, "    \"shards\": {SHARDS},");
    for (ci, churn) in [false, true].into_iter().enumerate() {
        let arm = if churn { "churn" } else { "no_churn" };
        let _ = writeln!(json, "    \"{arm}\": {{");
        for (ri, &rate) in rates.iter().enumerate() {
            let mut router = ShardRouter::bonsai(
                &cloud,
                KdTreeConfig::default(),
                ShardConfig::with_shards(SHARDS),
            );
            let publisher =
                std::sync::Arc::new(bonsai_core::EpochPublisher::new(router.snapshot()));
            let server = bonsai_serve::Server::new(
                std::sync::Arc::clone(&publisher),
                bonsai_serve::ServeConfig {
                    queue_capacity: 8192,
                    max_batch: 32,
                },
            );
            let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
            let churn_thread = churn.then(|| {
                let publisher = std::sync::Arc::clone(&publisher);
                let stop = std::sync::Arc::clone(&stop);
                let insert_source = insert_source.clone();
                std::thread::spawn(move || {
                    let mut epochs = 0u64;
                    let mut cursor = 0usize;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        // A small mutation burst per round: short
                        // bursts keep each writer time-slice (and so
                        // the worst reader stall on a one-core runner)
                        // bounded, while the 4 ms cadence still
                        // publishes a fresh epoch every few frames'
                        // worth of queries.
                        for j in 0..8 {
                            router.delete(((cursor + j) % cloud_n) as u32);
                            let p = insert_source[(cursor + j) % insert_source.len()];
                            let _ = router.insert(p);
                        }
                        cursor += 8;
                        router.commit();
                        publisher.publish(router.snapshot());
                        epochs += 1;
                        std::thread::sleep(std::time::Duration::from_millis(4));
                    }
                    epochs
                })
            });

            // Warm the executor (spawn + first batch) before timing.
            for &q in queries.iter().take(16) {
                let _ = server.radius_query(q, RADIUS);
            }

            let total_arrivals = (rate * window_ms / 1000).max(1) as usize;
            let gap = std::time::Duration::from_nanos(1_000_000_000 / rate);
            // Submitter paces the open-loop arrival grid; a dedicated
            // harvester blocks on each ticket in FIFO order so every
            // completion is timestamped by a condvar wake, not by
            // whenever the pacing loop happens to look. Latency is
            // charged from the actual submit instant: the arrival grid
            // never slips to server speed, but OS timer overshoot in
            // the load generator is not billed to the server (a late
            // burst of arrivals still queues, and that queueing is in
            // the completion−submit window).
            struct InFlight {
                queue: std::collections::VecDeque<(Instant, bonsai_serve::Ticket)>,
                closed: bool,
            }
            let in_flight = std::sync::Mutex::new(InFlight {
                queue: std::collections::VecDeque::new(),
                closed: false,
            });
            let handoff = std::sync::Condvar::new();
            let mut rejected = 0usize;
            let mut latencies_us: Vec<f64> = std::thread::scope(|s| {
                let harvester = s.spawn(|| {
                    let mut latencies = Vec::with_capacity(total_arrivals);
                    loop {
                        let entry = {
                            let mut q = in_flight.lock().expect("in-flight queue");
                            loop {
                                if let Some(entry) = q.queue.pop_front() {
                                    break Some(entry);
                                }
                                if q.closed {
                                    break None;
                                }
                                q = handoff.wait(q).expect("in-flight queue");
                            }
                        };
                        let Some((submitted, ticket)) = entry else {
                            return latencies;
                        };
                        ticket.wait().expect("bench query served");
                        latencies.push((Instant::now() - submitted).as_secs_f64() * 1e6);
                    }
                });
                let pacer_start = Instant::now();
                for k in 0..total_arrivals {
                    let scheduled = pacer_start + gap * k as u32;
                    loop {
                        let now = Instant::now();
                        if now >= scheduled {
                            break;
                        }
                        let remaining = scheduled - now;
                        if remaining > std::time::Duration::from_micros(300) {
                            std::thread::sleep(remaining - std::time::Duration::from_micros(200));
                        } else {
                            std::thread::yield_now();
                        }
                    }
                    match server.submit(queries[k % queries.len()], RADIUS) {
                        Ok(ticket) => {
                            in_flight
                                .lock()
                                .expect("in-flight queue")
                                .queue
                                .push_back((Instant::now(), ticket));
                            handoff.notify_all();
                        }
                        Err(_) => rejected += 1,
                    }
                }
                in_flight.lock().expect("in-flight queue").closed = true;
                handoff.notify_all();
                harvester.join().expect("harvester thread")
            });
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            let epochs_published = churn_thread
                .map(|h| h.join().expect("churn thread"))
                .unwrap_or(0);

            latencies_us.sort_unstable_by(|a, b| a.total_cmp(b));
            let pct = |p: f64| -> f64 {
                let idx = ((latencies_us.len() as f64 - 1.0) * p).round() as usize;
                latencies_us[idx]
            };
            let (p50, p95, p99) = (pct(0.50), pct(0.95), pct(0.99));
            let served = latencies_us.len();
            println!(
                "latency {arm:>9} @ {rate:>5}/s: p50 {p50:>8.1} µs | p95 {p95:>8.1} µs | \
                 p99 {p99:>8.1} µs | served {served} rejected {rejected} | \
                 epochs published {epochs_published}"
            );
            let _ = writeln!(json, "      \"rate_{rate}\": {{");
            let _ = writeln!(json, "        \"p50_us\": {p50:.1},");
            let _ = writeln!(json, "        \"p95_us\": {p95:.1},");
            let _ = writeln!(json, "        \"p99_us\": {p99:.1},");
            let _ = writeln!(json, "        \"served\": {served},");
            let _ = writeln!(json, "        \"rejected\": {rejected},");
            let _ = writeln!(json, "        \"epochs_published\": {epochs_published}");
            let _ = writeln!(json, "      }}{}", if ri == 0 { "," } else { "" });
        }
        let _ = writeln!(json, "    }}{}", if ci == 0 { "," } else { "" });
    }
    let _ = writeln!(json, "  }}");
    json.push_str("}\n");

    // --quick (the CI smoke) writes to a sibling path so it can never
    // clobber the committed full-run artifact.
    let out_path = if quick {
        "BENCH_radius_batch.quick.json"
    } else {
        "BENCH_radius_batch.json"
    };
    std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!("wrote {out_path}");
}
