//! Regenerates Table III: systematic sub-sampling error metrics.

use bonsai_bench::Cli;
use bonsai_pipeline::experiments::table3::Table3Result;

fn main() {
    let cli = Cli::parse();
    let full = cli.frames_or(240, 16);
    let mut cfg = cli.config;
    if !cli.quick {
        // The "full" run is a contiguous scaled window (see module docs);
        // keep the paper's 20×3 sub-sample plan within it.
        cfg.sequence.duration_s = full as f32 / cfg.sequence.frame_hz;
    }
    let result = Table3Result::run(cfg, full);
    print!("{}", result.render());
}
