//! Ablation: points per leaf (m) — compression ratio, visits per leaf
//! and extract-kernel gain.

use bonsai_bench::Cli;
use bonsai_pipeline::experiments::ablations::LeafSizeAblation;

fn main() {
    let cli = Cli::parse();
    let frames = cli.frames_or(6, 1);
    let result = LeafSizeAblation::run(cli.config, &[4, 8, 15, 16], frames);
    print!("{}", result.render());
}
