//! Regenerates Figure 12: extract-kernel energy distribution
//! (mean −10.84 % in the paper).

use bonsai_bench::Cli;
use bonsai_pipeline::experiments::{fig12::Fig12Result, paired::PairedRun};

fn main() {
    let cli = Cli::parse();
    let run = PairedRun::run(cli.config);
    print!("{}", Fig12Result::from_paired(&run).render());
}
