//! Regenerates the Section III-A leaf value-similarity census
//! (78 % x / 83 % y sign+exponent uniformity).

use bonsai_bench::Cli;
use bonsai_pipeline::experiments::sec3a::Sec3aResult;

fn main() {
    let cli = Cli::parse();
    let frames = cli.frames_or(20, 2);
    let result = Sec3aResult::run(cli.config, frames);
    print!("{}", result.render());
}
