//! Regenerates Figure 2: radius-search share of execution in the
//! euclidean-cluster and NDT-matching tasks.

use bonsai_bench::Cli;
use bonsai_pipeline::experiments::fig2::Fig2Result;

fn main() {
    let cli = Cli::parse();
    let frames = cli.frames_or(10, 2);
    let scans = if cli.quick { 1 } else { 4 };
    let result = Fig2Result::run(cli.config, frames, scans);
    print!("{}", result.render());
}
