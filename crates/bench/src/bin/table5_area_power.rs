//! Regenerates Table V: area and power of the added Bonsai hardware.

use bonsai_pipeline::experiments::table5::Table5Result;

fn main() {
    print!("{}", Table5Result::run().render());
}
