//! Regenerates Figure 11: end-to-end latency distribution
//! (mean −9.26 %, p99 −12.19 % in the paper).

use bonsai_bench::Cli;
use bonsai_pipeline::experiments::{fig11::Fig11Result, paired::PairedRun};

fn main() {
    let cli = Cli::parse();
    let run = PairedRun::run(cli.config);
    print!("{}", Fig11Result::from_paired(&run).render());
}
