//! Autoware-style euclidean cluster extraction over K-D Bonsai.
//!
//! This crate reproduces the paper's evaluation workload: the
//! `euclidean_cluster` perception node of Autoware.ai, which segments a
//! LiDAR frame into objects by repeatedly radius-searching a k-d tree
//! (PCL's `extractEuclideanClusters`, [Rusu 2010]).
//!
//! The node's stages, mirrored here with the same kernel attribution the
//! paper measures:
//!
//! 1. **Preprocess** ([`filters`]) — range/height crop, voxel-grid
//!    downsampling, RANSAC ground removal;
//! 2. **Extract** ([`extract_euclidean_clusters`]) — k-d tree build
//!    (+ leaf compression under Bonsai) and the BFS over radius-search
//!    neighbourhoods; this is the paper's *extract kernel*, ~90 % of the
//!    task;
//! 3. **Post-process** — cluster labelling and bounding boxes.
//!
//! The extraction is generic over the leaf-inspection mode
//! ([`TreeMode`]): baseline `f32`, Bonsai compressed (exact results,
//! fewer bytes), or the software-codec strawman. Cluster outputs are
//! identical across modes — asserted by tests, because that is the
//! paper's central safety claim.
//!
//! # Examples
//!
//! ```
//! use bonsai_cluster::{ClusterParams, FramePipeline, TreeMode};
//! use bonsai_geom::Point3;
//! use bonsai_sim::SimEngine;
//!
//! // Two well-separated blobs.
//! let mut cloud = Vec::new();
//! for i in 0..40 {
//!     let o = (i % 8) as f32 * 0.1;
//!     cloud.push(Point3::new(5.0 + o, 0.0, 1.0 + (i / 8) as f32 * 0.1));
//!     cloud.push(Point3::new(15.0 + o, 3.0, 1.0 + (i / 8) as f32 * 0.1));
//! }
//! let mut sim = SimEngine::disabled();
//! let pipeline = FramePipeline::new(ClusterParams::default());
//! let result = pipeline.cluster_prepared(&mut sim, cloud, TreeMode::Bonsai);
//! assert_eq!(result.output.clusters.len(), 2);
//! ```

#![forbid(unsafe_code)]

pub mod filters;

mod extract;
mod pipeline;
mod streaming;

pub use bonsai_core::{AdaptReport, CompactionPolicy, Coverage, ShardPolicy};
pub use extract::{
    extract_euclidean_clusters, extract_euclidean_clusters_batched,
    extract_euclidean_clusters_sharded, ClusterOutput, TreeMode,
};
pub use pipeline::{
    AdaptPolicy, AuditPolicy, ClusterParams, FramePipeline, FrameResult, PipelineError,
    StreamingPipeline,
};
pub use streaming::{FrameUpdate, HealReport, StreamingExtractor};
