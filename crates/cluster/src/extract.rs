use bonsai_core::{
    BonsaiTree, Coverage, RadiusSearchEngine, ShardConfig, ShardRouter, SoftwareCodecProcessor,
};
use bonsai_geom::Point3;
use bonsai_isa::Machine;
use bonsai_kdtree::{
    BaselineLeafProcessor, BuildStats, KdTree, KdTreeConfig, Neighbor, QueryBatch, SearchScratch,
    SearchStats,
};
use bonsai_sim::{Kernel, OpClass, SimEngine};

/// Which leaf-inspection path the extraction uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TreeMode {
    /// Uncompressed `f32` leaves (the paper's baseline).
    #[default]
    Baseline,
    /// Bonsai-compressed leaves via the ISA extensions.
    Bonsai,
    /// Bonsai-compressed leaves decompressed in software (the Section
    /// IV-A strawman).
    SoftwareCodec,
}

/// The result of one euclidean-cluster extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutput {
    /// Clusters as sorted point-index lists, ordered by seed index —
    /// deterministic, so outputs of different [`TreeMode`]s compare
    /// directly.
    pub clusters: Vec<Vec<u32>>,
    /// Aggregated search work counters.
    pub search_stats: SearchStats,
    /// Tree shape statistics.
    pub build_stats: BuildStats,
    /// Compressed-array footprint in bytes (0 in baseline mode).
    pub compressed_bytes: u64,
    /// Which regions this extraction covered. A from-scratch build is
    /// always complete; a streaming extraction serving through
    /// quarantined shards reports the offline regions here (see
    /// [`Coverage`]).
    pub coverage: Coverage,
}

/// Branch sites of the cluster BFS.
mod sites {
    pub const VISITED: u32 = 0x60;
    pub const SIZE_FILTER: u32 = 0x61;
}

/// PCL's `extractEuclideanClusters` (paper Section II-C): grows clusters
/// by breadth-first expansion over radius-search neighbourhoods.
///
/// `points` is the preprocessed (downsampled, ground-free) cloud. The
/// k-d tree build, leaf compression (under Bonsai) and every radius
/// search are charged to their respective kernels; the BFS bookkeeping
/// is charged to `ClusterLogic`.
///
/// # Examples
///
/// ```
/// use bonsai_cluster::{extract_euclidean_clusters, TreeMode};
/// use bonsai_geom::Point3;
/// use bonsai_kdtree::KdTreeConfig;
/// use bonsai_sim::SimEngine;
///
/// let mut pts = Vec::new();
/// for i in 0..30 {
///     pts.push(Point3::new(i as f32 * 0.05, 0.0, 0.0));          // blob A
///     pts.push(Point3::new(10.0 + i as f32 * 0.05, 0.0, 0.0));   // blob B
/// }
/// let mut sim = SimEngine::disabled();
/// let out = extract_euclidean_clusters(
///     &mut sim, pts, 0.3, 5, 1000, KdTreeConfig::default(), TreeMode::Baseline);
/// assert_eq!(out.clusters.len(), 2);
/// assert_eq!(out.clusters[0].len(), 30);
/// ```
pub fn extract_euclidean_clusters(
    sim: &mut SimEngine,
    points: Vec<Point3>,
    tolerance: f32,
    min_cluster_size: usize,
    max_cluster_size: usize,
    tree_cfg: KdTreeConfig,
    mode: TreeMode,
) -> ClusterOutput {
    assert!(tolerance > 0.0, "cluster tolerance must be positive");
    if !sim.is_enabled() {
        // Production path: no events to record, so drain the BFS
        // through the batch engine (and, with the `parallel` feature,
        // across worker threads). Output is identical to the
        // instrumented path below — euclidean clusters are the
        // connected components of the tolerance graph, independent of
        // traversal order, and the engine's per-query results are
        // bit-identical to the leaf processors'.
        return extract_euclidean_clusters_batched(
            points,
            tolerance,
            min_cluster_size,
            max_cluster_size,
            tree_cfg,
            mode,
        );
    }
    let n = points.len();

    // Build the tree (Build kernel; + Compress kernel under Bonsai).
    #[allow(clippy::large_enum_variant)] // one stack instance per extraction
    enum Built {
        Baseline(KdTree),
        Bonsai(BonsaiTree),
    }
    let built = match mode {
        TreeMode::Baseline => Built::Baseline(KdTree::build(points, tree_cfg, sim)),
        TreeMode::Bonsai | TreeMode::SoftwareCodec => {
            Built::Bonsai(BonsaiTree::build(points, tree_cfg, sim))
        }
    };
    let (tree, bonsai): (&KdTree, Option<&BonsaiTree>) = match &built {
        Built::Baseline(t) => (t, None),
        Built::Bonsai(b) => (b.kd_tree(), Some(b)),
    };

    // Leaf processors are stateful (machine, scratch addresses); create
    // them once for the whole extraction — per-query construction would
    // allocate fresh simulated scratch for every search and poison the
    // cache model with artificial cold misses.
    let mut machine = Machine::new();
    let mut baseline_proc = BaselineLeafProcessor::new(sim);
    let mut software_proc = match mode {
        TreeMode::SoftwareCodec => bonsai.map(|b| SoftwareCodecProcessor::new(sim, b.directory())),
        _ => None,
    };
    let mut bonsai_proc = match mode {
        TreeMode::Bonsai => {
            bonsai.map(|b| bonsai_core::BonsaiLeafProcessor::new(b.directory(), &mut machine))
        }
        _ => None,
    };

    let mut search_stats = SearchStats::default();
    let mut neighbors: Vec<Neighbor> = Vec::new();
    let mut scratch = SearchScratch::new();

    // BFS state (PCL's `processed` array + seed queue), plus the result
    // vectors the BFS reads back after every search (the searches wrote
    // them; the read-back is the `nn_indices[j]` access of PCL's
    // extractEuclideanClusters loop).
    let processed_addr = sim.alloc(n as u64, 64);
    let queue_addr = sim.alloc(n as u64 * 4, 64);
    let nn_read_addr = sim.alloc(64 * 1024, 64);
    let mut processed = vec![false; n];
    let mut clusters: Vec<Vec<u32>> = Vec::new();

    for seed in 0..n as u32 {
        sim.set_kernel(Kernel::ClusterLogic);
        sim.load(processed_addr + seed as u64, 1);
        sim.exec(OpClass::IntAlu, 2);
        let seen = processed[seed as usize];
        sim.branch(sites::VISITED, seen);
        if seen {
            continue;
        }
        processed[seed as usize] = true;
        sim.store(processed_addr + seed as u64, 1);

        let mut queue: Vec<u32> = vec![seed];
        sim.store(queue_addr, 4);
        let mut head = 0usize;
        while head < queue.len() {
            let q_idx = queue[head];
            sim.set_kernel(Kernel::ClusterLogic);
            sim.load(queue_addr + head as u64 * 4, 4);
            sim.exec(OpClass::IntAlu, 4);
            head += 1;

            let query = tree.points()[q_idx as usize];
            match (mode, &mut bonsai_proc, &mut software_proc) {
                (TreeMode::Baseline, _, _) => tree.radius_search_scratch(
                    sim,
                    &mut baseline_proc,
                    query,
                    tolerance,
                    &mut neighbors,
                    &mut search_stats,
                    &mut scratch,
                ),
                (TreeMode::Bonsai, Some(proc), _) => tree.radius_search_scratch(
                    sim,
                    proc,
                    query,
                    tolerance,
                    &mut neighbors,
                    &mut search_stats,
                    &mut scratch,
                ),
                (TreeMode::SoftwareCodec, _, Some(proc)) => tree.radius_search_scratch(
                    sim,
                    proc,
                    query,
                    tolerance,
                    &mut neighbors,
                    &mut search_stats,
                    &mut scratch,
                ),
                _ => unreachable!("mode/tree mismatch"),
            }

            sim.set_kernel(Kernel::ClusterLogic);
            for (j, nb) in neighbors.iter().enumerate() {
                sim.load(nn_read_addr + (j as u64 % 8192) * 4, 4);
                sim.load(processed_addr + nb.index as u64, 1);
                sim.exec(OpClass::IntAlu, 2);
                let seen = processed[nb.index as usize];
                sim.branch(sites::VISITED, seen);
                if !seen {
                    processed[nb.index as usize] = true;
                    sim.store(processed_addr + nb.index as u64, 1);
                    sim.store(queue_addr + queue.len() as u64 * 4, 4);
                    queue.push(nb.index);
                }
            }
        }

        sim.exec(OpClass::IntAlu, 3);
        let size_ok = (min_cluster_size..=max_cluster_size).contains(&queue.len());
        sim.branch(sites::SIZE_FILTER, size_ok);
        if size_ok {
            queue.sort_unstable();
            clusters.push(queue);
        }
    }
    sim.set_kernel(Kernel::Other);

    ClusterOutput {
        clusters,
        search_stats,
        build_stats: tree.build_stats(),
        compressed_bytes: bonsai.map_or(0, |b| b.compression_stats().compressed_bytes),
        coverage: Coverage::default(),
    }
}

/// Frontier size past which a BFS round fans out across threads. Below
/// this the scoped-thread setup costs more than the searches.
#[cfg(feature = "parallel")]
const PARALLEL_FRONTIER_MIN: usize = 512;

/// A whole-batch radius searcher the BFS can drain frontiers through:
/// the single-tree engine or the shard router, with the same
/// sequential/parallel split.
pub(crate) trait FrontierSearcher {
    fn batch_seq(&self, queries: &[Point3], radius: f32, batch: &mut QueryBatch);
    #[cfg(feature = "parallel")]
    fn batch_par(&self, queries: &[Point3], radius: f32, batch: &mut QueryBatch);
}

impl FrontierSearcher for RadiusSearchEngine<'_> {
    fn batch_seq(&self, queries: &[Point3], radius: f32, batch: &mut QueryBatch) {
        self.search_batch(queries, radius, batch);
    }
    #[cfg(feature = "parallel")]
    fn batch_par(&self, queries: &[Point3], radius: f32, batch: &mut QueryBatch) {
        self.search_batch_parallel(queries, radius, batch, 0);
    }
}

impl FrontierSearcher for ShardRouter {
    fn batch_seq(&self, queries: &[Point3], radius: f32, batch: &mut QueryBatch) {
        self.search_batch(queries, radius, batch);
    }
    #[cfg(feature = "parallel")]
    fn batch_par(&self, queries: &[Point3], radius: f32, batch: &mut QueryBatch) {
        self.search_batch_parallel(queries, radius, batch, 0);
    }
}

/// Searches one BFS frontier, in parallel when the frontier is large
/// enough to amortize thread startup.
pub(crate) fn search_frontier<S: FrontierSearcher>(
    searcher: &S,
    queries: &[Point3],
    tolerance: f32,
    batch: &mut QueryBatch,
) {
    #[cfg(feature = "parallel")]
    if queries.len() >= PARALLEL_FRONTIER_MIN {
        return searcher.batch_par(queries, tolerance, batch);
    }
    searcher.batch_seq(queries, tolerance, batch);
}

/// The level-synchronous BFS shared by the batched, sharded and
/// streaming extractions: grows each cluster by answering one whole
/// frontier of radius queries per round through `search` (any batch
/// searcher with exact per-query neighbor sets), then size-filters.
/// Clusters are the connected components of the tolerance graph, so
/// the result is independent of the searcher's per-query neighbor
/// *order*.
///
/// `alive`, when given, masks `points`: dead slots are never seeded
/// (the streaming extractor's cloud keeps deleted points' coordinate
/// slots, and its searcher never returns a dead index).
pub(crate) fn bfs_connected_clusters<F>(
    points: &[Point3],
    alive: Option<&[bool]>,
    min_cluster_size: usize,
    max_cluster_size: usize,
    search_stats: &mut SearchStats,
    mut search: F,
) -> Vec<Vec<u32>>
where
    F: FnMut(&[Point3], &mut QueryBatch),
{
    let n = points.len();
    let mut processed: Vec<bool> = match alive {
        // Pre-marking dead slots as processed removes them from both
        // the seed loop and membership checks.
        Some(alive) => alive.iter().map(|&a| !a).collect(),
        None => vec![false; n],
    };
    let mut clusters: Vec<Vec<u32>> = Vec::new();
    // Round-trip buffers, reused across every round of every cluster.
    let mut batch = QueryBatch::new();
    let mut frontier: Vec<u32> = Vec::new();
    let mut next_frontier: Vec<u32> = Vec::new();
    let mut queries: Vec<Point3> = Vec::new();

    for seed in 0..n as u32 {
        if processed[seed as usize] {
            continue;
        }
        processed[seed as usize] = true;
        let mut members: Vec<u32> = vec![seed];
        frontier.clear();
        frontier.push(seed);
        // Level-synchronous BFS: one batched search per frontier.
        while !frontier.is_empty() {
            queries.clear();
            queries.extend(frontier.iter().map(|&i| points[i as usize]));
            search(&queries, &mut batch);
            *search_stats += *batch.stats();
            next_frontier.clear();
            for qi in 0..frontier.len() {
                for nb in batch.results(qi) {
                    if !processed[nb.index as usize] {
                        processed[nb.index as usize] = true;
                        members.push(nb.index);
                        next_frontier.push(nb.index);
                    }
                }
            }
            std::mem::swap(&mut frontier, &mut next_frontier);
        }

        if (min_cluster_size..=max_cluster_size).contains(&members.len()) {
            members.sort_unstable();
            clusters.push(members);
        }
    }
    clusters
}

/// The uninstrumented production form of [`extract_euclidean_clusters`]:
/// identical clusters, but the BFS drains its frontier through the
/// batch radius-search engine — each round answers every frontier
/// point's neighborhood query in one allocation-free batch (fanned out
/// across threads with the `parallel` feature) instead of issuing one
/// fully-independent search per point.
///
/// [`extract_euclidean_clusters`] dispatches here by itself whenever
/// its [`SimEngine`] is disabled; call this directly when no simulator
/// is in scope.
///
/// # Examples
///
/// ```
/// use bonsai_cluster::{extract_euclidean_clusters_batched, TreeMode};
/// use bonsai_geom::Point3;
/// use bonsai_kdtree::KdTreeConfig;
///
/// let mut pts = Vec::new();
/// for i in 0..30 {
///     pts.push(Point3::new(i as f32 * 0.05, 0.0, 0.0));
///     pts.push(Point3::new(10.0 + i as f32 * 0.05, 0.0, 0.0));
/// }
/// let out = extract_euclidean_clusters_batched(
///     pts, 0.3, 5, 1000, KdTreeConfig::default(), TreeMode::Bonsai);
/// assert_eq!(out.clusters.len(), 2);
/// ```
pub fn extract_euclidean_clusters_batched(
    points: Vec<Point3>,
    tolerance: f32,
    min_cluster_size: usize,
    max_cluster_size: usize,
    tree_cfg: KdTreeConfig,
    mode: TreeMode,
) -> ClusterOutput {
    assert!(tolerance > 0.0, "cluster tolerance must be positive");
    let mut sim = SimEngine::disabled();

    #[allow(clippy::large_enum_variant)] // one stack instance per extraction
    enum Built {
        Baseline(KdTree),
        Bonsai(BonsaiTree),
    }
    let built = match mode {
        TreeMode::Baseline => Built::Baseline(KdTree::build(points, tree_cfg, &mut sim)),
        TreeMode::Bonsai | TreeMode::SoftwareCodec => {
            Built::Bonsai(BonsaiTree::build(points, tree_cfg, &mut sim))
        }
    };
    let (tree, engine, compressed_bytes) = match &built {
        Built::Baseline(t) => (t, RadiusSearchEngine::baseline(t), 0),
        Built::Bonsai(b) => (
            b.kd_tree(),
            RadiusSearchEngine::bonsai(b),
            b.compression_stats().compressed_bytes,
        ),
    };

    let mut search_stats = SearchStats::default();
    let clusters = bfs_connected_clusters(
        tree.points(),
        None,
        min_cluster_size,
        max_cluster_size,
        &mut search_stats,
        |queries, batch| search_frontier(&engine, queries, tolerance, batch),
    );

    ClusterOutput {
        clusters,
        search_stats,
        build_stats: tree.build_stats(),
        compressed_bytes,
        coverage: Coverage::default(),
    }
}

/// [`extract_euclidean_clusters_batched`] served by a sharded
/// multi-tree [`ShardRouter`] instead of one tree: the cloud is
/// median-cut into `shard_cfg.shards` spatial shards (built in parallel
/// with the `parallel` feature), and every BFS frontier drains through
/// the router, which searches only the shards each query ball touches.
///
/// Clusters are **identical** to the single-tree extraction for every
/// mode — euclidean clusters are the connected components of the
/// tolerance graph, and the router's per-query neighbor sets are
/// bit-identical to the single-tree engine's. `build_stats` aggregates
/// the shard trees (leaf/interior sums, deepest shard), and
/// `search_stats` counts the per-shard traversal work the router
/// actually performed.
///
/// # Examples
///
/// ```
/// use bonsai_cluster::{extract_euclidean_clusters_sharded, TreeMode};
/// use bonsai_core::ShardConfig;
/// use bonsai_geom::Point3;
/// use bonsai_kdtree::KdTreeConfig;
///
/// let mut pts = Vec::new();
/// for i in 0..30 {
///     pts.push(Point3::new(i as f32 * 0.05, 0.0, 0.0));
///     pts.push(Point3::new(10.0 + i as f32 * 0.05, 0.0, 0.0));
/// }
/// let out = extract_euclidean_clusters_sharded(
///     pts, 0.3, 5, 1000, KdTreeConfig::default(), TreeMode::Bonsai,
///     ShardConfig::with_shards(4));
/// assert_eq!(out.clusters.len(), 2);
/// ```
pub fn extract_euclidean_clusters_sharded(
    points: Vec<Point3>,
    tolerance: f32,
    min_cluster_size: usize,
    max_cluster_size: usize,
    tree_cfg: KdTreeConfig,
    mode: TreeMode,
    shard_cfg: ShardConfig,
) -> ClusterOutput {
    assert!(tolerance > 0.0, "cluster tolerance must be positive");
    // The router borrows the cloud (each shard copies only its own
    // points), so the original stays available for the BFS's
    // global-index coordinate lookups without a second full copy.
    let router = match mode {
        TreeMode::Baseline => ShardRouter::baseline(&points, tree_cfg, shard_cfg),
        TreeMode::Bonsai => ShardRouter::bonsai(&points, tree_cfg, shard_cfg),
        TreeMode::SoftwareCodec => ShardRouter::software_codec(&points, tree_cfg, shard_cfg),
    };

    let mut search_stats = SearchStats::default();
    let clusters = bfs_connected_clusters(
        &points,
        None,
        min_cluster_size,
        max_cluster_size,
        &mut search_stats,
        |queries, batch| search_frontier(&router, queries, tolerance, batch),
    );

    ClusterOutput {
        clusters,
        search_stats,
        build_stats: router.build_stats(),
        compressed_bytes: router.compressed_bytes(),
        coverage: router.coverage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: Point3, n: usize, spread: f32, seed: u64) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32 - 0.5
        };
        (0..n)
            .map(|_| center + Point3::new(next(), next(), next()) * spread)
            .collect()
    }

    fn three_blob_cloud() -> Vec<Point3> {
        let mut pts = blob(Point3::new(5.0, 0.0, 1.0), 120, 0.8, 1);
        pts.extend(blob(Point3::new(12.0, 6.0, 1.0), 80, 0.7, 2));
        pts.extend(blob(Point3::new(-8.0, -4.0, 1.0), 150, 0.9, 3));
        // A couple of isolated noise points that no cluster should keep.
        pts.push(Point3::new(40.0, 40.0, 1.0));
        pts.push(Point3::new(-40.0, 35.0, 1.0));
        pts
    }

    #[test]
    fn finds_the_three_blobs() {
        let mut sim = SimEngine::disabled();
        let out = extract_euclidean_clusters(
            &mut sim,
            three_blob_cloud(),
            0.5,
            10,
            10_000,
            KdTreeConfig::default(),
            TreeMode::Baseline,
        );
        assert_eq!(out.clusters.len(), 3);
        let mut sizes: Vec<usize> = out.clusters.iter().map(|c| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![80, 120, 150]);
    }

    #[test]
    fn all_modes_produce_identical_clusters() {
        let cloud = three_blob_cloud();
        let mut outputs = Vec::new();
        for mode in [
            TreeMode::Baseline,
            TreeMode::Bonsai,
            TreeMode::SoftwareCodec,
        ] {
            let mut sim = SimEngine::disabled();
            let out = extract_euclidean_clusters(
                &mut sim,
                cloud.clone(),
                0.5,
                10,
                10_000,
                KdTreeConfig::default(),
                mode,
            );
            outputs.push(out.clusters);
        }
        assert_eq!(outputs[0], outputs[1], "bonsai differs from baseline");
        assert_eq!(
            outputs[0], outputs[2],
            "software codec differs from baseline"
        );
    }

    #[test]
    fn clusters_partition_their_points() {
        let mut sim = SimEngine::disabled();
        let cloud = three_blob_cloud();
        let n = cloud.len();
        let out = extract_euclidean_clusters(
            &mut sim,
            cloud,
            0.5,
            1,
            10_000,
            KdTreeConfig::default(),
            TreeMode::Baseline,
        );
        // With min size 1, every point lands in exactly one cluster.
        let mut seen = vec![false; n];
        for c in &out.clusters {
            for &i in c {
                assert!(!seen[i as usize]);
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn max_size_filters_giant_clusters() {
        let mut sim = SimEngine::disabled();
        let out = extract_euclidean_clusters(
            &mut sim,
            three_blob_cloud(),
            0.5,
            10,
            100, // the 120- and 150-point blobs exceed this
            KdTreeConfig::default(),
            TreeMode::Baseline,
        );
        assert_eq!(out.clusters.len(), 1);
        assert_eq!(out.clusters[0].len(), 80);
    }

    /// The batched BFS must reproduce the instrumented per-query BFS
    /// exactly: same clusters and the same aggregate search counters,
    /// for every tree mode.
    #[test]
    fn batched_extraction_matches_instrumented_per_query_bfs() {
        let cloud = three_blob_cloud();
        for mode in [
            TreeMode::Baseline,
            TreeMode::Bonsai,
            TreeMode::SoftwareCodec,
        ] {
            // Enabled sim → the instrumented, one-search-per-point BFS.
            let mut sim = SimEngine::new(&bonsai_sim::CpuConfig::a72_like());
            let instrumented = extract_euclidean_clusters(
                &mut sim,
                cloud.clone(),
                0.5,
                10,
                10_000,
                KdTreeConfig::default(),
                mode,
            );
            let batched = extract_euclidean_clusters_batched(
                cloud.clone(),
                0.5,
                10,
                10_000,
                KdTreeConfig::default(),
                mode,
            );
            assert_eq!(batched.clusters, instrumented.clusters, "{mode:?}");
            assert_eq!(
                batched.search_stats, instrumented.search_stats,
                "{mode:?} stats"
            );
            assert_eq!(batched.build_stats, instrumented.build_stats);
            assert_eq!(batched.compressed_bytes, instrumented.compressed_bytes);
        }
    }

    /// Sharded extraction must produce the identical clusters for every
    /// mode and shard count, including K=1 and K larger than any
    /// sensible shard size.
    #[test]
    fn sharded_extraction_matches_single_tree_clusters() {
        let cloud = three_blob_cloud();
        for mode in [
            TreeMode::Baseline,
            TreeMode::Bonsai,
            TreeMode::SoftwareCodec,
        ] {
            let single = extract_euclidean_clusters_batched(
                cloud.clone(),
                0.5,
                10,
                10_000,
                KdTreeConfig::default(),
                mode,
            );
            for shards in [1, 2, 5, 64] {
                let sharded = extract_euclidean_clusters_sharded(
                    cloud.clone(),
                    0.5,
                    10,
                    10_000,
                    KdTreeConfig::default(),
                    mode,
                    ShardConfig::with_shards(shards),
                );
                assert_eq!(sharded.clusters, single.clusters, "{mode:?} K={shards}");
                assert_eq!(
                    sharded.compressed_bytes > 0,
                    mode != TreeMode::Baseline,
                    "{mode:?} K={shards}"
                );
            }
        }
    }

    #[test]
    fn kernels_are_attributed() {
        let mut sim = SimEngine::new(&bonsai_sim::CpuConfig::a72_like());
        extract_euclidean_clusters(
            &mut sim,
            three_blob_cloud(),
            0.5,
            10,
            10_000,
            KdTreeConfig::default(),
            TreeMode::Bonsai,
        );
        for k in [
            Kernel::Build,
            Kernel::Compress,
            Kernel::Traverse,
            Kernel::LeafScan,
            Kernel::ClusterLogic,
        ] {
            assert!(sim.kernel_counters(k).micro_ops() > 0, "kernel {k} empty");
        }
    }

    #[test]
    fn empty_cloud_is_fine() {
        let mut sim = SimEngine::disabled();
        let out = extract_euclidean_clusters(
            &mut sim,
            Vec::new(),
            0.5,
            10,
            100,
            KdTreeConfig::default(),
            TreeMode::Bonsai,
        );
        assert!(out.clusters.is_empty());
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn zero_tolerance_rejected() {
        let mut sim = SimEngine::disabled();
        extract_euclidean_clusters(
            &mut sim,
            vec![Point3::ZERO],
            0.0,
            1,
            10,
            KdTreeConfig::default(),
            TreeMode::Baseline,
        );
    }
}
