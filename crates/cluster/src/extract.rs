use bonsai_core::{BonsaiTree, SoftwareCodecProcessor};
use bonsai_geom::Point3;
use bonsai_isa::Machine;
use bonsai_kdtree::{
    BaselineLeafProcessor, BuildStats, KdTree, KdTreeConfig, Neighbor, SearchStats,
};
use bonsai_sim::{Kernel, OpClass, SimEngine};

/// Which leaf-inspection path the extraction uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TreeMode {
    /// Uncompressed `f32` leaves (the paper's baseline).
    #[default]
    Baseline,
    /// Bonsai-compressed leaves via the ISA extensions.
    Bonsai,
    /// Bonsai-compressed leaves decompressed in software (the Section
    /// IV-A strawman).
    SoftwareCodec,
}

/// The result of one euclidean-cluster extraction.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterOutput {
    /// Clusters as sorted point-index lists, ordered by seed index —
    /// deterministic, so outputs of different [`TreeMode`]s compare
    /// directly.
    pub clusters: Vec<Vec<u32>>,
    /// Aggregated search work counters.
    pub search_stats: SearchStats,
    /// Tree shape statistics.
    pub build_stats: BuildStats,
    /// Compressed-array footprint in bytes (0 in baseline mode).
    pub compressed_bytes: u64,
}

/// Branch sites of the cluster BFS.
mod sites {
    pub const VISITED: u32 = 0x60;
    pub const SIZE_FILTER: u32 = 0x61;
}

/// PCL's `extractEuclideanClusters` (paper Section II-C): grows clusters
/// by breadth-first expansion over radius-search neighbourhoods.
///
/// `points` is the preprocessed (downsampled, ground-free) cloud. The
/// k-d tree build, leaf compression (under Bonsai) and every radius
/// search are charged to their respective kernels; the BFS bookkeeping
/// is charged to `ClusterLogic`.
///
/// # Examples
///
/// ```
/// use bonsai_cluster::{extract_euclidean_clusters, TreeMode};
/// use bonsai_geom::Point3;
/// use bonsai_kdtree::KdTreeConfig;
/// use bonsai_sim::SimEngine;
///
/// let mut pts = Vec::new();
/// for i in 0..30 {
///     pts.push(Point3::new(i as f32 * 0.05, 0.0, 0.0));          // blob A
///     pts.push(Point3::new(10.0 + i as f32 * 0.05, 0.0, 0.0));   // blob B
/// }
/// let mut sim = SimEngine::disabled();
/// let out = extract_euclidean_clusters(
///     &mut sim, pts, 0.3, 5, 1000, KdTreeConfig::default(), TreeMode::Baseline);
/// assert_eq!(out.clusters.len(), 2);
/// assert_eq!(out.clusters[0].len(), 30);
/// ```
pub fn extract_euclidean_clusters(
    sim: &mut SimEngine,
    points: Vec<Point3>,
    tolerance: f32,
    min_cluster_size: usize,
    max_cluster_size: usize,
    tree_cfg: KdTreeConfig,
    mode: TreeMode,
) -> ClusterOutput {
    assert!(tolerance > 0.0, "cluster tolerance must be positive");
    let n = points.len();

    // Build the tree (Build kernel; + Compress kernel under Bonsai).
    enum Built {
        Baseline(KdTree),
        Bonsai(BonsaiTree),
    }
    let built = match mode {
        TreeMode::Baseline => Built::Baseline(KdTree::build(points, tree_cfg, sim)),
        TreeMode::Bonsai | TreeMode::SoftwareCodec => {
            Built::Bonsai(BonsaiTree::build(points, tree_cfg, sim))
        }
    };
    let (tree, bonsai): (&KdTree, Option<&BonsaiTree>) = match &built {
        Built::Baseline(t) => (t, None),
        Built::Bonsai(b) => (b.kd_tree(), Some(b)),
    };

    // Leaf processors are stateful (machine, scratch addresses); create
    // them once for the whole extraction — per-query construction would
    // allocate fresh simulated scratch for every search and poison the
    // cache model with artificial cold misses.
    let mut machine = Machine::new();
    let mut baseline_proc = BaselineLeafProcessor::new(sim);
    let mut software_proc = match mode {
        TreeMode::SoftwareCodec => bonsai.map(|b| SoftwareCodecProcessor::new(sim, b.directory())),
        _ => None,
    };
    let mut bonsai_proc = match mode {
        TreeMode::Bonsai => {
            bonsai.map(|b| bonsai_core::BonsaiLeafProcessor::new(sim, b.directory(), &mut machine))
        }
        _ => None,
    };

    let mut search_stats = SearchStats::default();
    let mut neighbors: Vec<Neighbor> = Vec::new();

    // BFS state (PCL's `processed` array + seed queue), plus the result
    // vectors the BFS reads back after every search (the searches wrote
    // them; the read-back is the `nn_indices[j]` access of PCL's
    // extractEuclideanClusters loop).
    let processed_addr = sim.alloc(n as u64, 64);
    let queue_addr = sim.alloc(n as u64 * 4, 64);
    let nn_read_addr = sim.alloc(64 * 1024, 64);
    let mut processed = vec![false; n];
    let mut clusters: Vec<Vec<u32>> = Vec::new();

    for seed in 0..n as u32 {
        sim.set_kernel(Kernel::ClusterLogic);
        sim.load(processed_addr + seed as u64, 1);
        sim.exec(OpClass::IntAlu, 2);
        let seen = processed[seed as usize];
        sim.branch(sites::VISITED, seen);
        if seen {
            continue;
        }
        processed[seed as usize] = true;
        sim.store(processed_addr + seed as u64, 1);

        let mut queue: Vec<u32> = vec![seed];
        sim.store(queue_addr, 4);
        let mut head = 0usize;
        while head < queue.len() {
            let q_idx = queue[head];
            sim.set_kernel(Kernel::ClusterLogic);
            sim.load(queue_addr + head as u64 * 4, 4);
            sim.exec(OpClass::IntAlu, 4);
            head += 1;

            let query = tree.points()[q_idx as usize];
            match (mode, &mut bonsai_proc, &mut software_proc) {
                (TreeMode::Baseline, _, _) => tree.radius_search(
                    sim,
                    &mut baseline_proc,
                    query,
                    tolerance,
                    &mut neighbors,
                    &mut search_stats,
                ),
                (TreeMode::Bonsai, Some(proc), _) => tree.radius_search(
                    sim,
                    proc,
                    query,
                    tolerance,
                    &mut neighbors,
                    &mut search_stats,
                ),
                (TreeMode::SoftwareCodec, _, Some(proc)) => tree.radius_search(
                    sim,
                    proc,
                    query,
                    tolerance,
                    &mut neighbors,
                    &mut search_stats,
                ),
                _ => unreachable!("mode/tree mismatch"),
            }

            sim.set_kernel(Kernel::ClusterLogic);
            for (j, nb) in neighbors.iter().enumerate() {
                sim.load(nn_read_addr + (j as u64 % 8192) * 4, 4);
                sim.load(processed_addr + nb.index as u64, 1);
                sim.exec(OpClass::IntAlu, 2);
                let seen = processed[nb.index as usize];
                sim.branch(sites::VISITED, seen);
                if !seen {
                    processed[nb.index as usize] = true;
                    sim.store(processed_addr + nb.index as u64, 1);
                    sim.store(queue_addr + queue.len() as u64 * 4, 4);
                    queue.push(nb.index);
                }
            }
        }

        sim.exec(OpClass::IntAlu, 3);
        let size_ok = (min_cluster_size..=max_cluster_size).contains(&queue.len());
        sim.branch(sites::SIZE_FILTER, size_ok);
        if size_ok {
            queue.sort_unstable();
            clusters.push(queue);
        }
    }
    sim.set_kernel(Kernel::Other);

    ClusterOutput {
        clusters,
        search_stats,
        build_stats: tree.build_stats(),
        compressed_bytes: bonsai.map_or(0, |b| b.compression_stats().compressed_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(center: Point3, n: usize, spread: f32, seed: u64) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32 - 0.5
        };
        (0..n)
            .map(|_| center + Point3::new(next(), next(), next()) * spread)
            .collect()
    }

    fn three_blob_cloud() -> Vec<Point3> {
        let mut pts = blob(Point3::new(5.0, 0.0, 1.0), 120, 0.8, 1);
        pts.extend(blob(Point3::new(12.0, 6.0, 1.0), 80, 0.7, 2));
        pts.extend(blob(Point3::new(-8.0, -4.0, 1.0), 150, 0.9, 3));
        // A couple of isolated noise points that no cluster should keep.
        pts.push(Point3::new(40.0, 40.0, 1.0));
        pts.push(Point3::new(-40.0, 35.0, 1.0));
        pts
    }

    #[test]
    fn finds_the_three_blobs() {
        let mut sim = SimEngine::disabled();
        let out = extract_euclidean_clusters(
            &mut sim,
            three_blob_cloud(),
            0.5,
            10,
            10_000,
            KdTreeConfig::default(),
            TreeMode::Baseline,
        );
        assert_eq!(out.clusters.len(), 3);
        let mut sizes: Vec<usize> = out.clusters.iter().map(|c| c.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![80, 120, 150]);
    }

    #[test]
    fn all_modes_produce_identical_clusters() {
        let cloud = three_blob_cloud();
        let mut outputs = Vec::new();
        for mode in [
            TreeMode::Baseline,
            TreeMode::Bonsai,
            TreeMode::SoftwareCodec,
        ] {
            let mut sim = SimEngine::disabled();
            let out = extract_euclidean_clusters(
                &mut sim,
                cloud.clone(),
                0.5,
                10,
                10_000,
                KdTreeConfig::default(),
                mode,
            );
            outputs.push(out.clusters);
        }
        assert_eq!(outputs[0], outputs[1], "bonsai differs from baseline");
        assert_eq!(
            outputs[0], outputs[2],
            "software codec differs from baseline"
        );
    }

    #[test]
    fn clusters_partition_their_points() {
        let mut sim = SimEngine::disabled();
        let cloud = three_blob_cloud();
        let n = cloud.len();
        let out = extract_euclidean_clusters(
            &mut sim,
            cloud,
            0.5,
            1,
            10_000,
            KdTreeConfig::default(),
            TreeMode::Baseline,
        );
        // With min size 1, every point lands in exactly one cluster.
        let mut seen = vec![false; n];
        for c in &out.clusters {
            for &i in c {
                assert!(!seen[i as usize]);
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn max_size_filters_giant_clusters() {
        let mut sim = SimEngine::disabled();
        let out = extract_euclidean_clusters(
            &mut sim,
            three_blob_cloud(),
            0.5,
            10,
            100, // the 120- and 150-point blobs exceed this
            KdTreeConfig::default(),
            TreeMode::Baseline,
        );
        assert_eq!(out.clusters.len(), 1);
        assert_eq!(out.clusters[0].len(), 80);
    }

    #[test]
    fn kernels_are_attributed() {
        let mut sim = SimEngine::new(&bonsai_sim::CpuConfig::a72_like());
        extract_euclidean_clusters(
            &mut sim,
            three_blob_cloud(),
            0.5,
            10,
            10_000,
            KdTreeConfig::default(),
            TreeMode::Bonsai,
        );
        for k in [
            Kernel::Build,
            Kernel::Compress,
            Kernel::Traverse,
            Kernel::LeafScan,
            Kernel::ClusterLogic,
        ] {
            assert!(sim.kernel_counters(k).micro_ops() > 0, "kernel {k} empty");
        }
    }

    #[test]
    fn empty_cloud_is_fine() {
        let mut sim = SimEngine::disabled();
        let out = extract_euclidean_clusters(
            &mut sim,
            Vec::new(),
            0.5,
            10,
            100,
            KdTreeConfig::default(),
            TreeMode::Bonsai,
        );
        assert!(out.clusters.is_empty());
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn zero_tolerance_rejected() {
        let mut sim = SimEngine::disabled();
        extract_euclidean_clusters(
            &mut sim,
            vec![Point3::ZERO],
            0.0,
            1,
            10,
            KdTreeConfig::default(),
            TreeMode::Baseline,
        );
    }
}
