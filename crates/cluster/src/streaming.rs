//! Streaming frame-to-frame cluster extraction: diff-and-update
//! instead of rebuild-per-frame.
//!
//! Consecutive LiDAR frames share most of their (preprocessed) points,
//! yet [`FramePipeline::run`](crate::FramePipeline::run) pays a full
//! tree build + Bonsai compression per frame. The
//! [`StreamingExtractor`] keeps a mutable sharded index alive across
//! frames instead: frame 0 builds it (median-cut shards, parallel
//! construction), every later frame is **diffed** against the live
//! point set ([`FrameUpdate`]: exact-coordinate multiset matching) and
//! only the difference is applied — deletions and insertions routed to
//! their shards, touched leaves lazily re-baked, everything else
//! untouched.
//!
//! Clusters extracted from the incremental index are **identical** to
//! a from-scratch rebuild over the same frame in all three
//! [`TreeMode`]s: euclidean clusters are the connected components of
//! the tolerance graph, and the mutated trees' per-query neighbor sets
//! are bit-identical to fresh builds (property-tested at the workspace
//! root). [`StreamingPipeline`] wires this into the frame pipeline and
//! reproduces [`FramePipeline::run`]'s `FrameResult` end to end.
//!
//! [`FramePipeline::run`]: crate::FramePipeline::run

use std::collections::HashMap;

use bonsai_core::{
    AdaptReport, CompactionPolicy, RouterSnapshot, ShardConfig, ShardPolicy, ShardRouter,
};
use bonsai_geom::Point3;
use bonsai_kdtree::{AuditViolation, KdTreeConfig, SearchStats};

use crate::extract::{bfs_connected_clusters, search_frontier, ClusterOutput, TreeMode};
use crate::pipeline::PipelineError;

/// One frame's difference against the live point set: coordinates to
/// insert and global indices to delete. Produced by
/// [`StreamingExtractor::diff`], consumed by
/// [`StreamingExtractor::apply`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameUpdate {
    /// Points present in the new frame but not in the live set.
    pub added: Vec<Point3>,
    /// Global indices of live points absent from the new frame.
    pub removed: Vec<u32>,
}

impl FrameUpdate {
    /// Total mutations this update carries.
    pub fn churn(&self) -> usize {
        self.added.len() + self.removed.len()
    }
}

/// A persistent, incrementally-updated cluster extractor.
///
/// Global point indices are assigned at insertion and stay valid until
/// the point is deleted; the live set after
/// [`ingest_frame`](StreamingExtractor::ingest_frame) is exactly the
/// frame's point multiset. A *deleted* index may later be recycled for
/// a new point once a shard rebuild retires its slot (generation-
/// tagged free lists keep long streams from growing one entry per
/// insert ever), so hold indices only while their points are live —
/// [`try_point`](StreamingExtractor::try_point) distinguishes the
/// cases.
///
/// # Examples
///
/// ```
/// use bonsai_cluster::{StreamingExtractor, TreeMode};
/// use bonsai_geom::Point3;
/// use bonsai_kdtree::KdTreeConfig;
///
/// let frame0: Vec<Point3> =
///     (0..60).map(|i| Point3::new((i % 10) as f32 * 0.1, (i / 10) as f32 * 0.1, 1.0)).collect();
/// let mut ex = StreamingExtractor::new(TreeMode::Bonsai, KdTreeConfig::default(), 2);
/// ex.ingest_frame(&frame0);
/// // Frame 1: one point moved.
/// let mut frame1 = frame0.clone();
/// frame1[7].x += 0.01;
/// let update = ex.diff(&frame1);
/// assert_eq!(update.churn(), 2); // one removal + one insertion
/// ex.ingest_frame(&frame1);
/// let out = ex.extract(0.3, 1, 10_000);
/// assert_eq!(out.clusters.iter().map(|c| c.len()).sum::<usize>(), 60);
/// ```
#[derive(Debug)]
pub struct StreamingExtractor {
    mode: TreeMode,
    tree_cfg: KdTreeConfig,
    shards: usize,
    router: ShardRouter,
    /// Every point ever inserted, by global index (deleted points keep
    /// their slot so indices stay stable).
    coords: Vec<Point3>,
    alive: Vec<bool>,
    num_live: usize,
    /// Live global indices per exact coordinate bits, each list
    /// ascending — the frame matcher, maintained across mutations so
    /// [`diff`](StreamingExtractor::diff) is `O(frame + churn)`
    /// instead of re-hashing the whole live set per frame.
    matcher: HashMap<[u32; 3], Vec<u32>>,
}

impl StreamingExtractor {
    /// An empty extractor serving `mode` through `shards` spatial
    /// shards (`0` and `1` both mean a single shard).
    pub fn new(mode: TreeMode, tree_cfg: KdTreeConfig, shards: usize) -> StreamingExtractor {
        let shards = shards.max(1);
        StreamingExtractor {
            mode,
            tree_cfg,
            shards,
            router: Self::make_router(mode, tree_cfg, shards, &[]),
            coords: Vec::new(),
            alive: Vec::new(),
            num_live: 0,
            matcher: HashMap::new(),
        }
    }

    fn make_router(
        mode: TreeMode,
        tree_cfg: KdTreeConfig,
        shards: usize,
        points: &[Point3],
    ) -> ShardRouter {
        let cfg = ShardConfig::with_shards(shards);
        match mode {
            TreeMode::Baseline => ShardRouter::baseline(points, tree_cfg, cfg),
            TreeMode::Bonsai => ShardRouter::bonsai(points, tree_cfg, cfg),
            TreeMode::SoftwareCodec => ShardRouter::software_codec(points, tree_cfg, cfg),
        }
    }

    /// The leaf-inspection mode.
    pub fn mode(&self) -> TreeMode {
        self.mode
    }

    /// Live points currently indexed.
    pub fn num_live(&self) -> usize {
        self.num_live
    }

    /// Total global indices ever assigned (live + deleted); all global
    /// indices are `< points_ever()`.
    pub fn points_ever(&self) -> usize {
        self.coords.len()
    }

    /// The live global indices, ascending.
    pub fn live_indices(&self) -> impl Iterator<Item = u32> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| i as u32)
    }

    /// The coordinates of global point `idx`. Valid while the point is
    /// live; a deleted index keeps reporting its last coordinates only
    /// until a shard rebuild recycles the slot (use
    /// [`try_point`](StreamingExtractor::try_point) when liveness is
    /// not guaranteed).
    ///
    /// # Panics
    ///
    /// Panics if `idx` was never assigned.
    pub fn point(&self, idx: u32) -> Point3 {
        self.coords[idx as usize]
    }

    /// The coordinates of global point `idx`, or
    /// [`PipelineError::PointNotLive`] when the index is out of range
    /// or its point has been deleted — never panics, the serving-path
    /// form of [`point`](StreamingExtractor::point).
    pub fn try_point(&self, idx: u32) -> Result<Point3, PipelineError> {
        let i = idx as usize;
        if i < self.coords.len() && self.alive[i] {
            Ok(self.coords[i])
        } else {
            Err(PipelineError::PointNotLive(idx))
        }
    }

    /// The underlying sharded index (bounds, per-shard stats,
    /// fragmentation).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// An immutable point-in-time view of the index, suitable for
    /// publication as an epoch
    /// ([`EpochPublisher`](bonsai_core::EpochPublisher)): the shards
    /// are shared copy-on-write, so taking a snapshot is `O(shards)`
    /// pointer clones and later mutations pay the deep copy only for
    /// the shards they actually touch while this snapshot is alive.
    pub fn snapshot(&self) -> RouterSnapshot {
        self.router.snapshot()
    }

    /// One amortized rolling-compaction step (see
    /// [`ShardRouter::compact_next`]): checks the next shard against
    /// `policy` and rebuilds it — dropping its dead points and garbage
    /// slots and re-tightening its bounding box — when the waste
    /// criterion fires. Global indices are stable across rebuilds, so
    /// the live set, the frame matcher and every extracted cluster are
    /// unaffected; only memory and routed traversal work shrink.
    /// Returns the rebuilt shard's index, if any.
    pub fn maybe_compact(&mut self, policy: &CompactionPolicy) -> Option<usize> {
        self.router.compact_next(policy)
    }

    /// One load-adaptive topology step (see
    /// [`ShardRouter::adapt_step`]): folds the per-shard query counters
    /// accumulated since the last step into the decaying load profile
    /// and executes at most one SAH-guided split of a hot shard or
    /// merge of two cold shards. `epoch_lag` is the staleness of the
    /// oldest still-pinned epoch
    /// ([`EpochPublisher::epoch_lag`](bonsai_core::EpochPublisher::epoch_lag));
    /// the policy refuses topology changes while readers lag too far.
    /// Global indices are stable across the targeted rebuilds, so
    /// extraction output and the frame matcher are unaffected.
    pub fn maybe_adapt(&mut self, policy: &ShardPolicy, epoch_lag: u64) -> AdaptReport {
        self.router.adapt_step(policy, epoch_lag)
    }

    /// Diffs a new frame against the live set by exact coordinate bits
    /// (multiset semantics: duplicates match one-for-one, earliest
    /// global index first). The returned update turns the live set
    /// into exactly `next`'s multiset.
    ///
    /// Cost is `O(frame + churn)` per call: the coordinate multimap is
    /// **maintained across mutations** (one list edit per insert or
    /// delete in [`apply`](StreamingExtractor::apply)) rather than
    /// re-hashed over the whole live set every frame, so a quiet frame
    /// pays only its own length.
    pub fn diff(&self, next: &[Point3]) -> FrameUpdate {
        let (update, _) = self.diff_with_positions(next);
        update
    }

    /// [`diff`](StreamingExtractor::diff), also returning for each
    /// frame position either the matched live global index or `None`
    /// (the position is an insertion).
    fn diff_with_positions(&self, next: &[Point3]) -> (FrameUpdate, Vec<Option<u32>>) {
        // The maintained lists are ascending; consume from the front.
        let mut cursors: HashMap<[u32; 3], usize> = HashMap::new();
        let mut matched: Vec<Option<u32>> = Vec::with_capacity(next.len());
        let mut added = Vec::new();
        for &p in next {
            let key = coord_key(p);
            let hit = match self.matcher.get(&key) {
                Some(list) => {
                    let cur = cursors.entry(key).or_insert(0);
                    if *cur < list.len() {
                        let g = list[*cur];
                        *cur += 1;
                        Some(g)
                    } else {
                        None
                    }
                }
                None => None,
            };
            if hit.is_none() {
                added.push(p);
            }
            matched.push(hit);
        }
        let mut removed = Vec::new();
        for (key, list) in &self.matcher {
            let consumed = cursors.get(key).copied().unwrap_or(0);
            removed.extend_from_slice(&list[consumed..]);
        }
        removed.sort_unstable();
        (FrameUpdate { added, removed }, matched)
    }

    /// Rebuilds the frame matcher from the live set (the reference the
    /// maintained map is tested against, and the frame-0 bootstrap).
    fn rebuilt_matcher(&self) -> HashMap<[u32; 3], Vec<u32>> {
        let mut by_bits: HashMap<[u32; 3], Vec<u32>> = HashMap::new();
        for idx in self.live_indices() {
            let p = self.coords[idx as usize];
            by_bits.entry(coord_key(p)).or_default().push(idx);
        }
        by_bits
    }

    /// Records just-inserted global index `g` in the matcher. `g` may
    /// be a recycled slot (smaller than indices already listed), so the
    /// list position is found by binary search to keep it ascending.
    fn matcher_insert(&mut self, g: u32) {
        let key = coord_key(self.coords[g as usize]);
        let list = self.matcher.entry(key).or_default();
        match list.binary_search(&g) {
            Ok(_) => unreachable!("global index {g} inserted twice"),
            Err(pos) => list.insert(pos, g),
        }
    }

    /// Removes global index `g` from the matcher (it was just
    /// deleted); drops the list when it empties so the map tracks the
    /// live set's distinct coordinates.
    fn matcher_remove(&mut self, g: u32) {
        let key = coord_key(self.coords[g as usize]);
        let Some(list) = self.matcher.get_mut(&key) else {
            unreachable!("deleted a live point the matcher never saw");
        };
        // lint: allow(panic-free-serving) — matcher lists are sorted
        // and hold exactly the live points of their coordinate key; a
        // miss is internal index corruption, which the deep auditor
        // (not silent continuation) is the recovery path for.
        let pos = list
            .binary_search(&g)
            .expect("live point present in its matcher list");
        list.remove(pos);
        if list.is_empty() {
            self.matcher.remove(&key);
        }
    }

    /// Applies an update: deletions and insertions are routed to their
    /// shards, then the touched shards' leaves are re-baked. Returns
    /// one entry per `update.added` point, in order: its assigned
    /// global index, or `None` for a non-finite point (rejected by
    /// every mutation entry point — it can never be routed or found).
    pub fn apply(&mut self, update: &FrameUpdate) -> Vec<Option<u32>> {
        for &idx in &update.removed {
            if self.router.delete(idx) {
                self.alive[idx as usize] = false;
                self.num_live -= 1;
                self.matcher_remove(idx);
            }
        }
        let mut inserted = Vec::with_capacity(update.added.len());
        for &p in &update.added {
            let assigned = self.router.insert(p);
            if let Some(g) = assigned {
                let gi = g as usize;
                if gi < self.coords.len() {
                    // Recycled slot: a shard rebuild retired this
                    // index after its point died.
                    debug_assert!(!self.alive[gi], "router recycled a live index");
                    self.coords[gi] = p;
                    self.alive[gi] = true;
                } else {
                    debug_assert_eq!(gi, self.coords.len());
                    self.coords.push(p);
                    self.alive.push(true);
                }
                self.num_live += 1;
                self.matcher_insert(g);
            }
            inserted.push(assigned);
        }
        self.router.commit();
        inserted
    }

    /// Global-index sentinel `ingest_frame` reports for a frame
    /// position holding a non-finite point: such points are never
    /// indexed (no search could find them), so they own no global
    /// index.
    pub const UNINDEXED: u32 = u32::MAX;

    /// Makes the live (finite) points equal to `next`'s: the first
    /// frame builds the sharded index from scratch (median-cut,
    /// parallel shard builds), every later frame diffs and applies
    /// only the change. Returns the global index of each frame
    /// position; positions holding non-finite points report
    /// [`UNINDEXED`](StreamingExtractor::UNINDEXED).
    pub fn ingest_frame(&mut self, next: &[Point3]) -> Vec<u32> {
        if self.coords.is_empty() {
            // Frame 0: a real build beats point-by-point insertion and
            // gives the median-cut shard layout every later mutation
            // routes into. Non-finite points are dropped up front so
            // frame 0 obeys the same mutation guard as every later
            // frame.
            let finite: Vec<Point3> = next.iter().copied().filter(|p| p.is_finite()).collect();
            self.router = Self::make_router(self.mode, self.tree_cfg, self.shards, &finite);
            self.coords = finite;
            self.alive = vec![true; self.coords.len()];
            self.num_live = self.coords.len();
            self.matcher = self.rebuilt_matcher();
            let mut g = 0u32;
            return next
                .iter()
                .map(|p| {
                    if p.is_finite() {
                        g += 1;
                        g - 1
                    } else {
                        Self::UNINDEXED
                    }
                })
                .collect();
        }
        let (update, matched) = self.diff_with_positions(next);
        let inserted = self.apply(&update);
        let mut inserted_iter = inserted.into_iter();
        matched
            .into_iter()
            .map(|m| match m {
                Some(g) => g,
                // lint: allow(panic-free-serving) — `apply()` returns
                // exactly one entry per unmatched position by
                // construction of the diff; a shortfall is a diff bug,
                // not an input condition.
                None => inserted_iter
                    .next()
                    .expect("one apply() entry per unmatched position")
                    .unwrap_or(Self::UNINDEXED),
            })
            .collect()
    }

    /// Extracts euclidean clusters from the live set, in **global**
    /// index space: identical membership to a from-scratch extraction
    /// over the live points, for every mode and shard count.
    ///
    /// With shards quarantined (see [`heal`](StreamingExtractor::heal))
    /// their points are **offline**: they neither seed nor join
    /// clusters, and the output's `coverage` names the offline regions
    /// so consumers know the result is partial.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive tolerance; see
    /// [`try_extract`](StreamingExtractor::try_extract) for the
    /// `Result` form.
    pub fn extract(
        &self,
        tolerance: f32,
        min_cluster_size: usize,
        max_cluster_size: usize,
    ) -> ClusterOutput {
        assert!(tolerance > 0.0, "cluster tolerance must be positive");
        let coverage = self.router.coverage();
        // Quarantined shards are unsearchable; their points must not
        // seed clusters either, or singleton fragments would appear.
        let masked: Vec<bool>;
        let alive: &[bool] = if coverage.complete {
            &self.alive
        } else {
            masked = self
                .alive
                .iter()
                .enumerate()
                .map(|(g, &a)| {
                    a && self
                        .router
                        .shard_of(g as u32)
                        .is_some_and(|s| !self.router.is_quarantined(s))
                })
                .collect();
            &masked
        };
        let mut search_stats = SearchStats::default();
        let clusters = bfs_connected_clusters(
            &self.coords,
            Some(alive),
            min_cluster_size,
            max_cluster_size,
            &mut search_stats,
            |queries, batch| search_frontier(&self.router, queries, tolerance, batch),
        );
        ClusterOutput {
            clusters,
            search_stats,
            build_stats: self.router.build_stats(),
            compressed_bytes: self.router.compressed_bytes(),
            coverage,
        }
    }

    /// [`extract`](StreamingExtractor::extract) behind the serving
    /// `Result` boundary: a degenerate tolerance is an error, never a
    /// panic.
    pub fn try_extract(
        &self,
        tolerance: f32,
        min_cluster_size: usize,
        max_cluster_size: usize,
    ) -> Result<ClusterOutput, PipelineError> {
        if !tolerance.is_finite() || tolerance <= 0.0 {
            return Err(PipelineError::DegenerateTolerance(tolerance));
        }
        Ok(self.extract(tolerance, min_cluster_size, max_cluster_size))
    }

    /// [`ingest_frame`](StreamingExtractor::ingest_frame) behind the
    /// serving `Result` boundary: before mutating, the extractor's
    /// live count is checked against the router's — an `O(1)` tripwire
    /// for directory corruption that would otherwise surface as a
    /// panic deep inside the diff apply. (The full corruption check is
    /// [`audit`](StreamingExtractor::audit); this guard only catches
    /// drift the cheap counters already disagree on.)
    pub fn try_ingest_frame(&mut self, next: &[Point3]) -> Result<Vec<u32>, PipelineError> {
        if self.router.num_points() != self.num_live {
            return Err(PipelineError::CorruptionUnrecovered(vec![
                AuditViolation::new(
                    bonsai_kdtree::ViolationKind::Accounting,
                    format!(
                        "router holds {} live points but the extractor tracks {}",
                        self.router.num_points(),
                        self.num_live
                    ),
                ),
            ]));
        }
        Ok(self.ingest_frame(next))
    }

    /// Runs the deep invariant audit over the whole serving stack: the
    /// router's directory/free-list/accounting web plus every healthy
    /// shard's full tree (and, under Bonsai, compressed-layer) walk.
    /// Empty means certified; never panics on corrupt state.
    pub fn audit(&self) -> Vec<AuditViolation> {
        self.router.audit()
    }

    /// Audits, and if anything is wrong, quarantines every implicated
    /// shard and rebuilds it from the extractor's own coordinates —
    /// the authoritative copy the index is derived from. A violation
    /// that names no shard implicates the global directory itself, so
    /// every shard is rebuilt. Already-quarantined shards are rebuilt
    /// and re-admitted too.
    ///
    /// After a clean heal the index serves **bit-identical** results
    /// to a never-corrupted twin: same clusters, full coverage.
    pub fn heal(&mut self) -> HealReport {
        let violations = self.audit();
        let pre = self.router.quarantined_shards();
        if violations.is_empty() && pre.is_empty() {
            return HealReport {
                violations,
                rebuilt: Vec::new(),
                clean: true,
            };
        }
        let mut rebuilt: Vec<usize> = if violations.iter().any(|v| v.shard.is_none()) {
            (0..self.router.num_shards()).collect()
        } else {
            violations
                .iter()
                .filter_map(|v| v.shard.map(|s| s as usize))
                .chain(pre)
                .collect()
        };
        rebuilt.sort_unstable();
        rebuilt.dedup();
        for &s in &rebuilt {
            self.router.quarantine(s);
        }
        let live: Vec<(u32, Point3)> = self
            .live_indices()
            .map(|g| (g, self.coords[g as usize]))
            .collect();
        self.router.rebuild_shards_from(&rebuilt, &live);
        let clean = self.audit().is_empty();
        HealReport {
            violations,
            rebuilt,
            clean,
        }
    }

    /// Injects a seeded state fault into the live router (the chaos
    /// harness's entry point at this layer). Returns the attributed
    /// shard, or `None` when no site applies.
    #[cfg(feature = "chaos")]
    pub fn chaos_inject(
        &mut self,
        plan: &mut bonsai_core::FaultPlan,
        kind: bonsai_core::FaultKind,
    ) -> Option<usize> {
        plan.inject(&mut self.router, kind)
    }

    /// Mutable router access for the chaos suite (direct quarantine,
    /// hand-crafted corruption).
    #[cfg(feature = "chaos")]
    pub fn chaos_router_mut(&mut self) -> &mut ShardRouter {
        &mut self.router
    }
}

/// What one [`StreamingExtractor::heal`] call found and did.
#[derive(Debug, Clone, PartialEq)]
pub struct HealReport {
    /// Everything the triggering audit reported (empty = the index was
    /// already certified and nothing was quarantined).
    pub violations: Vec<AuditViolation>,
    /// Shards quarantined and rebuilt from the authoritative
    /// coordinates, ascending.
    pub rebuilt: Vec<usize>,
    /// Whether the post-heal audit certified the index.
    pub clean: bool,
}

fn coord_key(p: Point3) -> [u32; 3] {
    [p.x.to_bits(), p.y.to_bits(), p.z.to_bits()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract_euclidean_clusters_batched;

    fn blob(center: Point3, n: usize, spread: f32, seed: u64) -> Vec<Point3> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f32 / (1u64 << 53) as f32 - 0.5
        };
        (0..n)
            .map(|_| center + Point3::new(next(), next(), next()) * spread)
            .collect()
    }

    fn scene(shift: f32, seed: u64) -> Vec<Point3> {
        let mut pts = blob(Point3::new(5.0 + shift, 0.0, 1.0), 120, 0.8, 1);
        pts.extend(blob(Point3::new(12.0 + shift, 6.0, 1.0), 80, 0.7, 2));
        pts.extend(blob(Point3::new(-8.0, -4.0 + shift, 1.0), 150, 0.9, seed));
        pts
    }

    /// Normalizes a global-index cluster set to its member coordinates
    /// so it compares against a fresh extraction's local indices.
    fn cluster_coords(ex: &StreamingExtractor, clusters: &[Vec<u32>]) -> Vec<Vec<[u32; 3]>> {
        let mut out: Vec<Vec<[u32; 3]>> = clusters
            .iter()
            .map(|c| {
                let mut v: Vec<[u32; 3]> = c.iter().map(|&i| coord_key(ex.point(i))).collect();
                v.sort_unstable();
                v
            })
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn diff_is_exact_and_minimal() {
        let f0 = scene(0.0, 3);
        let mut ex = StreamingExtractor::new(TreeMode::Baseline, KdTreeConfig::default(), 3);
        assert_eq!(ex.diff(&f0).churn(), f0.len(), "everything added initially");
        ex.ingest_frame(&f0);
        assert_eq!(ex.diff(&f0), FrameUpdate::default(), "identical frame");
        let mut f1 = f0.clone();
        f1.truncate(f0.len() - 10);
        f1.push(Point3::new(100.0, 100.0, 1.0));
        let u = ex.diff(&f1);
        assert_eq!(u.added.len(), 1);
        assert_eq!(u.removed.len(), 10);
    }

    /// Regression: a non-finite point arriving in a later frame must
    /// not panic or shift any other position's global index — it is
    /// reported as `UNINDEXED`, never indexed, and extraction is
    /// unaffected.
    #[test]
    fn non_finite_frame_points_are_unindexed_not_fatal() {
        let f0 = scene(0.0, 3);
        let mut ex = StreamingExtractor::new(TreeMode::Bonsai, KdTreeConfig::default(), 2);
        ex.ingest_frame(&f0);

        let mut f1 = f0.clone();
        let fresh = Point3::new(50.0, 50.0, 1.0);
        f1.insert(0, Point3::new(f32::NAN, 0.0, 0.0));
        f1.push(fresh);
        f1.push(Point3::new(0.0, f32::INFINITY, 0.0));
        let globals = ex.ingest_frame(&f1);

        assert_eq!(globals.len(), f1.len());
        assert_eq!(globals[0], StreamingExtractor::UNINDEXED);
        assert_eq!(*globals.last().unwrap(), StreamingExtractor::UNINDEXED);
        assert_eq!(ex.num_live(), f0.len() + 1, "only the finite add is live");
        // Every finite position maps to its own coordinates.
        for (pos, &g) in globals.iter().enumerate() {
            if g != StreamingExtractor::UNINDEXED {
                assert_eq!(coord_key(ex.point(g)), coord_key(f1[pos]), "position {pos}");
            }
        }
        // The finite insertion is searchable; extraction still runs.
        let out = ex.extract(0.5, 1, 100_000);
        let total: usize = out.clusters.iter().map(|c| c.len()).sum();
        assert_eq!(total, ex.num_live());

        // Frame 0 obeys the same guard.
        let mut ex0 = StreamingExtractor::new(TreeMode::Baseline, KdTreeConfig::default(), 1);
        let globals0 = ex0.ingest_frame(&f1);
        assert_eq!(globals0[0], StreamingExtractor::UNINDEXED);
        assert_eq!(ex0.num_live(), f1.len() - 2);
        assert_eq!(globals0[1], 0, "finite positions number densely");
    }

    /// The maintained frame matcher must equal a from-scratch rebuild
    /// of the coordinate multimap after arbitrary churn — including
    /// duplicate coordinates, deletes of one duplicate, re-inserts of
    /// previously-deleted coordinates, and rejected non-finite points.
    #[test]
    fn maintained_matcher_equals_rebuilt_map() {
        let mut ex = StreamingExtractor::new(TreeMode::Baseline, KdTreeConfig::default(), 2);
        let mut f0 = scene(0.0, 5);
        f0.push(f0[3]); // exact duplicate: multiset semantics
        f0.push(f0[3]);
        ex.ingest_frame(&f0);
        assert_eq!(ex.matcher, ex.rebuilt_matcher(), "after frame 0");

        for frame in 1..6 {
            let mut next = scene(frame as f32 * 0.4, 5 + frame);
            if frame % 2 == 0 {
                next.push(next[7]); // re-appearing duplicates
                next.push(f0[3]); // a coordinate deleted in frame 1
                next.push(Point3::new(f32::NAN, 0.0, 0.0)); // never indexed
            }
            ex.ingest_frame(&next);
            assert_eq!(ex.matcher, ex.rebuilt_matcher(), "after frame {frame}");
            for list in ex.matcher.values() {
                assert!(list.windows(2).all(|w| w[0] < w[1]), "lists ascending");
            }
        }
        // The maintained map also keeps diff() exact: an identical
        // frame is a no-op.
        let last = scene(5.0 * 0.4, 10);
        ex.ingest_frame(&last);
        assert_eq!(ex.diff(&last), FrameUpdate::default());
    }

    /// Rolling compaction is invisible to extraction (same clusters as
    /// an uncompacted twin, frame after frame) while actually firing
    /// and bounding the index's waste on a churny stream.
    #[test]
    fn rolling_compaction_is_output_neutral_and_bounds_waste() {
        let mut plain = StreamingExtractor::new(TreeMode::Bonsai, KdTreeConfig::default(), 3);
        let mut compacted = StreamingExtractor::new(TreeMode::Bonsai, KdTreeConfig::default(), 3);
        let policy = CompactionPolicy {
            garbage_ratio: 0.15,
            min_points: 64,
        };
        let mut fired = 0usize;
        for frame in 0..30 {
            let cloud = scene((frame % 7) as f32 * 0.9, 11 + frame % 5);
            plain.ingest_frame(&cloud);
            compacted.ingest_frame(&cloud);
            if compacted.maybe_compact(&policy).is_some() {
                fired += 1;
            }
            let a = plain.extract(0.5, 1, 100_000);
            let b = compacted.extract(0.5, 1, 100_000);
            assert_eq!(
                cluster_coords(&plain, &a.clusters),
                cluster_coords(&compacted, &b.clusters),
                "frame {frame}: compaction changed extraction output"
            );
        }
        assert!(fired > 0, "the churny stream never triggered a rebuild");
        assert!(
            compacted.router().resident_bytes() < plain.router().resident_bytes(),
            "compaction did not reclaim memory: {} vs {}",
            compacted.router().resident_bytes(),
            plain.router().resident_bytes()
        );
    }

    #[test]
    fn streaming_extraction_matches_fresh_rebuild_across_frames() {
        for mode in [
            TreeMode::Baseline,
            TreeMode::Bonsai,
            TreeMode::SoftwareCodec,
        ] {
            for shards in [1, 4] {
                let mut ex = StreamingExtractor::new(mode, KdTreeConfig::default(), shards);
                for frame in 0..4 {
                    let cloud = scene(frame as f32 * 0.35, 3 + frame);
                    ex.ingest_frame(&cloud);
                    assert_eq!(ex.num_live(), cloud.len());
                    let streamed = ex.extract(0.5, 10, 10_000);
                    let fresh = extract_euclidean_clusters_batched(
                        cloud.clone(),
                        0.5,
                        10,
                        10_000,
                        KdTreeConfig::default(),
                        mode,
                    );
                    // Compare by member coordinates: global and
                    // frame-local indices differ, the point multisets
                    // must not.
                    let got = cluster_coords(&ex, &streamed.clusters);
                    let mut expect: Vec<Vec<[u32; 3]>> = fresh
                        .clusters
                        .iter()
                        .map(|c| {
                            let mut w: Vec<[u32; 3]> =
                                c.iter().map(|&i| coord_key(cloud[i as usize])).collect();
                            w.sort_unstable();
                            w
                        })
                        .collect();
                    expect.sort_unstable();
                    assert_eq!(got, expect, "{mode:?} shards {shards} frame {frame}");
                }
            }
        }
    }
}
