//! Point-cloud preprocessing filters (the Autoware euclidean-cluster
//! node's pre-stages), instrumented under the `Preprocess` kernel.

use std::collections::HashMap;

use bonsai_geom::Point3;
use bonsai_sim::{Kernel, OpClass, SimEngine};

/// Branch sites of the preprocessing code.
mod sites {
    pub const CROP: u32 = 0x50;
    pub const RANSAC_INLIER: u32 = 0x51;
}

/// Keeps points within `max_range` of the origin (x–y plane) and with
/// `z` in `[z_min, z_max]` — Autoware's `removePointsUpTo` + `clipCloud`.
///
/// # Examples
///
/// ```
/// use bonsai_cluster::filters::crop;
/// use bonsai_geom::Point3;
/// use bonsai_sim::SimEngine;
///
/// let pts = vec![Point3::new(1.0, 0.0, 0.5), Point3::new(90.0, 0.0, 0.5)];
/// let mut sim = SimEngine::disabled();
/// let kept = crop(&mut sim, &pts, 50.0, -0.5, 3.0);
/// assert_eq!(kept.len(), 1);
/// ```
pub fn crop(
    sim: &mut SimEngine,
    points: &[Point3],
    max_range: f32,
    z_min: f32,
    z_max: f32,
) -> Vec<Point3> {
    let prev = sim.set_kernel(Kernel::Preprocess);
    let src = sim.alloc(points.len() as u64 * 16, 64);
    let dst = sim.alloc(points.len() as u64 * 16, 64);
    let mut out = Vec::with_capacity(points.len());
    for (i, p) in points.iter().enumerate() {
        sim.load(src + i as u64 * 16, 12);
        sim.exec(OpClass::FpAlu, 4);
        let keep = p.planar_range() <= max_range && p.z >= z_min && p.z <= z_max;
        sim.branch(sites::CROP, keep);
        if keep {
            sim.store(dst + out.len() as u64 * 16, 12);
            out.push(*p);
        }
    }
    sim.set_kernel(prev);
    out
}

/// Voxel-grid downsampling: one centroid per occupied `voxel_size` cube
/// (PCL `VoxelGrid`, Autoware's `downsampleCloud`).
///
/// Output order follows first occupancy of each voxel, which makes the
/// result deterministic.
pub fn voxel_downsample(sim: &mut SimEngine, points: &[Point3], voxel_size: f32) -> Vec<Point3> {
    assert!(voxel_size > 0.0, "voxel size must be positive");
    let prev = sim.set_kernel(Kernel::Preprocess);
    let src = sim.alloc(points.len() as u64 * 16, 64);
    let inv = 1.0 / voxel_size;
    // Voxel key → (sum, count, output slot).
    let mut cells: HashMap<(i32, i32, i32), (Point3, u32, u32)> = HashMap::new();
    let mut order = 0u32;
    for (i, p) in points.iter().enumerate() {
        sim.load(src + i as u64 * 16, 12);
        // Key computation (3 muls + floors) and hash probe.
        sim.exec(OpClass::FpAlu, 3);
        sim.exec(OpClass::IntAlu, 8);
        let key = (
            (p.x * inv).floor() as i32,
            (p.y * inv).floor() as i32,
            (p.z * inv).floor() as i32,
        );
        let entry = cells.entry(key).or_insert_with(|| {
            let slot = order;
            order += 1;
            (Point3::ZERO, 0, slot)
        });
        entry.0 += *p;
        entry.1 += 1;
        sim.store(src + i as u64 * 16, 4); // accumulator update
    }
    let mut out = vec![Point3::ZERO; cells.len()];
    for (sum, count, slot) in cells.values() {
        sim.exec(OpClass::FpAlu, 3);
        out[*slot as usize] = *sum / *count as f32;
    }
    sim.set_kernel(prev);
    out
}

/// Hypothesis scoring evaluates every `RANSAC_SCORE_STRIDE`-th point —
/// the standard consensus-sampling shortcut (only the final inlier
/// filter touches every point).
const RANSAC_SCORE_STRIDE: usize = 4;

/// RANSAC ground-plane removal (Autoware's `removeFloor`, PCL
/// `SACSegmentation` with a plane model): fits the dominant
/// near-horizontal plane and drops its inliers.
///
/// Returns the non-ground points. Deterministic: the sample sequence is
/// derived from `seed`.
pub fn remove_ground(
    sim: &mut SimEngine,
    points: &[Point3],
    distance_threshold: f32,
    iterations: u32,
    seed: u64,
) -> Vec<Point3> {
    if points.len() < 3 {
        return points.to_vec();
    }
    let prev = sim.set_kernel(Kernel::Preprocess);
    let src = sim.alloc(points.len() as u64 * 16, 64);
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next_index = |n: usize| {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % n as u64) as usize
    };

    // Best plane as (unit normal, d) with plane: n·p + d = 0.
    let mut best: Option<(Point3, f32, u32)> = None;
    for _ in 0..iterations {
        let (a, b, c) = (
            points[next_index(points.len())],
            points[next_index(points.len())],
            points[next_index(points.len())],
        );
        sim.exec(OpClass::FpAlu, 20); // cross product + normalization
        let Some(normal) = (b - a).cross(c - a).normalized() else {
            continue;
        };
        // Ground planes are near-horizontal.
        if normal.z.abs() < 0.9 {
            continue;
        }
        let d = -normal.dot(a);
        let mut inliers = 0u32;
        for (i, p) in points.iter().enumerate().step_by(RANSAC_SCORE_STRIDE) {
            sim.load(src + i as u64 * 16, 12);
            sim.exec(OpClass::FpAlu, 5);
            let dist = (normal.dot(*p) + d).abs();
            let inlier = dist <= distance_threshold;
            sim.branch(sites::RANSAC_INLIER, inlier);
            if inlier {
                inliers += 1;
            }
        }
        if best.is_none_or(|(_, _, bi)| inliers > bi) {
            best = Some((normal, d, inliers));
        }
    }

    let out = match best {
        Some((normal, d, _)) => points
            .iter()
            .enumerate()
            .filter(|(i, p)| {
                sim.load(src + *i as u64 * 16, 12);
                sim.exec(OpClass::FpAlu, 5);
                (normal.dot(**p) + d).abs() > distance_threshold
            })
            .map(|(_, p)| *p)
            .collect(),
        None => points.to_vec(),
    };
    sim.set_kernel(prev);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crop_respects_all_three_limits() {
        let pts = vec![
            Point3::new(10.0, 0.0, 1.0),  // keep
            Point3::new(80.0, 0.0, 1.0),  // too far
            Point3::new(10.0, 0.0, -2.0), // too low
            Point3::new(10.0, 0.0, 9.0),  // too high
        ];
        let mut sim = SimEngine::disabled();
        let kept = crop(&mut sim, &pts, 50.0, -0.5, 3.0);
        assert_eq!(kept, vec![Point3::new(10.0, 0.0, 1.0)]);
    }

    #[test]
    fn voxel_downsample_merges_within_cells() {
        let pts = vec![
            Point3::new(0.01, 0.01, 0.01),
            Point3::new(0.09, 0.09, 0.09), // same 0.1 voxel
            Point3::new(0.51, 0.0, 0.0),   // different voxel
        ];
        let mut sim = SimEngine::disabled();
        let out = voxel_downsample(&mut sim, &pts, 0.1);
        assert_eq!(out.len(), 2);
        let centroid = out[0];
        assert!((centroid.x - 0.05).abs() < 1e-6);
    }

    #[test]
    fn voxel_downsample_is_deterministic() {
        let pts: Vec<Point3> = (0..500)
            .map(|i| Point3::new((i % 31) as f32 * 0.07, (i % 17) as f32 * 0.07, 0.0))
            .collect();
        let mut sim = SimEngine::disabled();
        let a = voxel_downsample(&mut sim, &pts, 0.2);
        let b = voxel_downsample(&mut sim, &pts, 0.2);
        assert_eq!(a, b);
    }

    #[test]
    fn ground_removal_keeps_objects() {
        // Flat ground at z=0 plus a box of points at z ∈ [1, 2].
        let mut pts = Vec::new();
        for i in 0..40 {
            for j in 0..40 {
                pts.push(Point3::new(i as f32 * 0.5, j as f32 * 0.5, 0.02));
            }
        }
        let object: Vec<Point3> = (0..100)
            .map(|i| Point3::new(5.0, (i % 10) as f32 * 0.1, 1.0 + (i / 10) as f32 * 0.1))
            .collect();
        pts.extend_from_slice(&object);
        let mut sim = SimEngine::disabled();
        let out = remove_ground(&mut sim, &pts, 0.15, 30, 7);
        // All object points survive; almost all ground removed.
        assert!(out.len() >= 100 && out.len() < 200, "kept {}", out.len());
        for p in &object {
            assert!(out.contains(p));
        }
    }

    #[test]
    fn ground_removal_handles_tiny_inputs() {
        let pts = vec![Point3::ZERO, Point3::new(1.0, 0.0, 0.0)];
        let mut sim = SimEngine::disabled();
        assert_eq!(remove_ground(&mut sim, &pts, 0.1, 10, 1).len(), 2);
    }

    #[test]
    fn filters_charge_preprocess_kernel() {
        let pts: Vec<Point3> = (0..200)
            .map(|i| Point3::new(i as f32 * 0.1, 0.0, 0.5))
            .collect();
        let mut sim = SimEngine::new(&bonsai_sim::CpuConfig::a72_like());
        crop(&mut sim, &pts, 50.0, -1.0, 3.0);
        voxel_downsample(&mut sim, &pts, 0.2);
        let pre = sim.kernel_counters(Kernel::Preprocess);
        assert!(pre.loads >= 400);
        assert_eq!(sim.kernel_counters(Kernel::Build).micro_ops(), 0);
    }

    #[test]
    #[should_panic(expected = "voxel size")]
    fn zero_voxel_size_rejected() {
        let mut sim = SimEngine::disabled();
        voxel_downsample(&mut sim, &[Point3::ZERO], 0.0);
    }
}
