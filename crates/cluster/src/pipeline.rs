use std::fmt;

use bonsai_geom::{Aabb, Point3};
use bonsai_kdtree::{AuditViolation, KdTreeConfig};
use bonsai_sim::{Kernel, OpClass, SimEngine};

use crate::extract::{extract_euclidean_clusters, ClusterOutput, TreeMode};
use crate::filters;

/// Why a streaming serving call failed — the `Result` boundary of
/// [`StreamingPipeline::try_process_frame`] and the extractor's
/// `try_*` entry points.
#[derive(Debug, Clone, PartialEq)]
pub enum PipelineError {
    /// The cluster tolerance is non-positive or non-finite: no radius
    /// search is defined for it.
    DegenerateTolerance(f32),
    /// An audit found corruption and the quarantine-and-rebuild heal
    /// could not restore a clean index; the violations that survived
    /// (or tripped the guard) are attached.
    CorruptionUnrecovered(Vec<AuditViolation>),
    /// A point lookup named a global index that is out of range or
    /// whose point has been deleted.
    PointNotLive(u32),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::DegenerateTolerance(t) => {
                write!(f, "cluster tolerance {t} is not a positive finite radius")
            }
            PipelineError::CorruptionUnrecovered(v) => {
                write!(
                    f,
                    "index corruption survived a heal ({} violations",
                    v.len()
                )?;
                if let Some(first) = v.first() {
                    write!(f, "; first: {first}")?;
                }
                write!(f, ")")
            }
            PipelineError::PointNotLive(idx) => {
                write!(f, "global point index {idx} is out of range or deleted")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// When [`StreamingPipeline::try_process_frame`] runs the deep
/// invariant audit (and, on findings, the quarantine-and-rebuild
/// heal).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuditPolicy {
    /// Never audit — the default; the healthy serving path is exactly
    /// the unaudited one.
    #[default]
    Off,
    /// Audit before every frame.
    EveryFrame,
    /// Audit before every `n`-th frame (`Every(0)` behaves like
    /// [`Off`](AuditPolicy::Off)).
    Every(u32),
}

/// When the streaming pipeline runs a load-adaptive topology step
/// ([`StreamingExtractor::maybe_adapt`](crate::StreamingExtractor::maybe_adapt)).
///
/// Off by default and cheap when on: a due step samples `O(shards)`
/// atomic counters, and only a shard whose decayed load crosses the
/// [`ShardPolicy`](bonsai_core::ShardPolicy) ratios pays a targeted
/// rebuild (at most one split *or* merge per due frame).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AdaptPolicy {
    /// Never adapt — the default; topology stays the build-time
    /// median cut.
    #[default]
    Off,
    /// Run one adapt step every `n`-th frame with the given policy
    /// knobs (`Every(0, _)` behaves like [`Off`](AdaptPolicy::Off)).
    Every(u32, bonsai_core::ShardPolicy),
}

/// Parameters of the end-to-end euclidean-cluster pipeline, with
/// Autoware-flavoured defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterParams {
    /// Keep points within this planar range of the vehicle, meters.
    pub crop_range: f32,
    /// Keep points with z above this, meters.
    pub crop_z_min: f32,
    /// Keep points with z below this, meters.
    pub crop_z_max: f32,
    /// Voxel-grid cell size, meters.
    pub voxel_size: f32,
    /// RANSAC ground-plane inlier threshold, meters.
    pub ground_threshold: f32,
    /// RANSAC iterations.
    pub ground_iterations: u32,
    /// Cluster tolerance (the radius-search radius), meters.
    pub tolerance: f32,
    /// Minimum cluster size in points.
    pub min_cluster_size: usize,
    /// Maximum cluster size in points.
    pub max_cluster_size: usize,
    /// K-d tree construction parameters.
    pub tree: KdTreeConfig,
    /// Spatial shards for the extraction stage: `0` or `1` serves every
    /// frame from one tree; `K ≥ 2` routes the BFS through a K-shard
    /// [`ShardRouter`](bonsai_core::ShardRouter) (production path only
    /// — an *instrumented* run always uses the single-tree extraction,
    /// whose event stream is what the paper models).
    pub shards: usize,
}

impl Default for ClusterParams {
    fn default() -> ClusterParams {
        ClusterParams {
            crop_range: 60.0,
            crop_z_min: -0.3,
            crop_z_max: 2.6,
            voxel_size: 0.15,
            ground_threshold: 0.12,
            ground_iterations: 12,
            tolerance: 0.35,
            min_cluster_size: 10,
            max_cluster_size: 50_000,
            tree: KdTreeConfig::default(),
            shards: 0,
        }
    }
}

/// Everything one frame produced.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameResult {
    /// The extraction output (clusters + stats).
    pub output: ClusterOutput,
    /// Per-cluster bounding boxes (post-processing stage).
    pub boxes: Vec<Aabb>,
    /// Points entering the extract kernel (after preprocessing).
    pub clustered_points: usize,
}

/// The euclidean-cluster frame pipeline: preprocess → extract →
/// post-process, with every stage charged to its kernel.
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct FramePipeline {
    params: ClusterParams,
}

impl FramePipeline {
    /// Creates a pipeline with the given parameters.
    pub fn new(params: ClusterParams) -> FramePipeline {
        FramePipeline { params }
    }

    /// The parameters.
    pub fn params(&self) -> &ClusterParams {
        &self.params
    }

    /// Runs the full pipeline on a raw sensor frame.
    pub fn run(&self, sim: &mut SimEngine, raw_cloud: &[Point3], mode: TreeMode) -> FrameResult {
        self.ingest(sim, raw_cloud);
        let objects = self.preprocess(sim, raw_cloud);
        self.cluster_prepared(sim, objects, mode)
    }

    /// Models the ROS → PCL cloud conversion every Autoware node performs
    /// on arrival (`pcl::fromROSMsg`): one pass over the raw message,
    /// field extraction, and a copy into the PCL cloud layout.
    fn ingest(&self, sim: &mut SimEngine, raw_cloud: &[Point3]) {
        let prev = sim.set_kernel(Kernel::Preprocess);
        let msg = sim.alloc(raw_cloud.len() as u64 * 22, 64); // PointCloud2 row stride
        let cloud = sim.alloc(raw_cloud.len() as u64 * 16, 64);
        for i in 0..raw_cloud.len() as u64 {
            sim.load(msg + i * 22, 16);
            sim.exec(OpClass::IntAlu, 6);
            sim.store(cloud + i * 16, 16);
        }
        sim.set_kernel(prev);
    }

    /// The preprocessing stages alone (crop → voxel → ground removal):
    /// the cloud the extract kernel consumes. Exposed for experiments
    /// that analyse the preprocessed cloud directly (leaf-similarity
    /// census, Table I error sweeps).
    pub fn preprocess(&self, sim: &mut SimEngine, raw_cloud: &[Point3]) -> Vec<Point3> {
        let p = &self.params;
        let cropped = filters::crop(sim, raw_cloud, p.crop_range, p.crop_z_min, p.crop_z_max);
        let down = filters::voxel_downsample(sim, &cropped, p.voxel_size);
        filters::remove_ground(sim, &down, p.ground_threshold, p.ground_iterations, 11)
    }

    /// Runs extraction + post-processing on an already-preprocessed
    /// cloud.
    pub fn cluster_prepared(
        &self,
        sim: &mut SimEngine,
        points: Vec<Point3>,
        mode: TreeMode,
    ) -> FrameResult {
        let p = &self.params;
        let clustered_points = points.len();
        let points_addr = sim.alloc(points.len() as u64 * 16, 64);
        let cloud_for_post = points.clone();
        let output = if p.shards > 1 && !sim.is_enabled() {
            crate::extract_euclidean_clusters_sharded(
                points,
                p.tolerance,
                p.min_cluster_size,
                p.max_cluster_size,
                p.tree,
                mode,
                bonsai_core::ShardConfig::with_shards(p.shards),
            )
        } else {
            extract_euclidean_clusters(
                sim,
                points,
                p.tolerance,
                p.min_cluster_size,
                p.max_cluster_size,
                p.tree,
                mode,
            )
        };

        // Post-processing: label points and compute cluster boxes
        // (Autoware publishes bounding boxes + centroids per cluster).
        let prev = sim.set_kernel(Kernel::PostProcess);
        let mut boxes = Vec::with_capacity(output.clusters.len());
        for cluster in &output.clusters {
            // Extraction never emits an empty cluster (min size ≥ 1),
            // so the box folds from the first member — no panic path
            // on the serving route; a defensively-empty cluster would
            // contribute no box rather than killing the frame.
            let mut aabb: Option<Aabb> = None;
            for &idx in cluster {
                sim.load(points_addr + idx as u64 * 16, 12);
                sim.exec(OpClass::FpAlu, 6);
                sim.store(points_addr + idx as u64 * 16, 4); // label write
                let pt = cloud_for_post[idx as usize];
                match &mut aabb {
                    Some(b) => b.insert(pt),
                    None => aabb = Some(Aabb::new(pt, pt)),
                }
            }
            boxes.extend(aabb);
        }
        sim.set_kernel(prev);
        FrameResult {
            output,
            boxes,
            clustered_points,
        }
    }
}

/// The streaming form of [`FramePipeline`]: one persistent
/// [`StreamingExtractor`](crate::StreamingExtractor) serves every
/// frame, so consecutive frames **diff-and-update** the sharded index
/// instead of rebuilding it. Frame 0 builds; frame `k` pays only its
/// churn (typically a few percent of the cloud) plus the per-touched-
/// leaf re-bake.
///
/// `process_frame` reproduces [`FramePipeline::run`]'s `FrameResult`
/// exactly — same clusters (frame-local indices), same boxes — for
/// every [`TreeMode`]; only the `search_stats`/`build_stats` counters
/// reflect the incremental trees' own shapes. Uninstrumented by
/// design: an instrumented run models the paper's rebuild-per-frame
/// kernel sequence, which an incremental update intentionally does not
/// reproduce.
///
/// # Examples
///
/// ```
/// use bonsai_cluster::{ClusterParams, StreamingPipeline, TreeMode};
/// use bonsai_geom::Point3;
///
/// let frame: Vec<Point3> = (0..200)
///     .map(|i| Point3::new((i % 20) as f32 * 0.1 + 5.0, (i / 20) as f32 * 0.1, 1.0))
///     .collect();
/// let mut pipeline = StreamingPipeline::new(ClusterParams::default(), TreeMode::Bonsai);
/// let first = pipeline.process_frame(&frame);   // builds
/// let second = pipeline.process_frame(&frame);  // zero churn
/// assert_eq!(first.output.clusters, second.output.clusters);
/// ```
#[derive(Debug)]
pub struct StreamingPipeline {
    pipeline: FramePipeline,
    mode: TreeMode,
    extractor: crate::StreamingExtractor,
    /// Scratch: global index → position in the current frame.
    frame_pos: Vec<u32>,
    /// Auto-compaction policy checked after every frame (`None`
    /// disables the rolling shard rebuilds).
    compaction: Option<bonsai_core::CompactionPolicy>,
    /// When the deep invariant audit runs (default: never).
    audit: AuditPolicy,
    /// When the load-adaptive split/merge step runs (default: never).
    adapt: AdaptPolicy,
    /// Accumulated adaptive-topology decisions (splits, merges, typed
    /// rejections) since construction.
    adapt_totals: bonsai_core::AdaptReport,
    /// Frames served so far (drives [`AuditPolicy::Every`]).
    frames_processed: u64,
    /// Epoch publication point: after every frame the freshly-mutated
    /// index is published as the next
    /// [`RouterSnapshot`](bonsai_core::RouterSnapshot) epoch, so a
    /// serving front-end holding this `Arc` answers queries against
    /// consistent snapshots *while* the pipeline keeps ingesting.
    publisher: std::sync::Arc<bonsai_core::EpochPublisher<bonsai_core::RouterSnapshot>>,
}

impl StreamingPipeline {
    /// Creates a streaming pipeline; `params.shards` picks the shard
    /// count of the persistent index (`0`/`1` = one shard).
    ///
    /// Auto-compaction defaults to
    /// [`CompactionPolicy::default`](bonsai_core::CompactionPolicy):
    /// after each frame one shard is checked (round robin) and rebuilt
    /// when churn has wasted enough of its storage, so the **tree and
    /// directory storage** of a long stream stays bounded without any
    /// frame paying for more than one shard rebuild. (Rebuilds also
    /// retire dead global indices into a generation-tagged free list,
    /// so the per-insert bookkeeping — extractor coordinates, router
    /// directory — stops growing too.) Compaction never changes
    /// extraction output —
    /// global indices are stable and per-point membership is
    /// shape-independent — so the streaming results stay bit-identical
    /// to rebuild-per-frame with the policy on or off. Disable or tune
    /// with [`set_compaction_policy`](StreamingPipeline::set_compaction_policy).
    pub fn new(params: ClusterParams, mode: TreeMode) -> StreamingPipeline {
        let extractor = crate::StreamingExtractor::new(mode, params.tree, params.shards.max(1));
        let publisher = std::sync::Arc::new(bonsai_core::EpochPublisher::new(extractor.snapshot()));
        StreamingPipeline {
            pipeline: FramePipeline::new(params),
            mode,
            extractor,
            frame_pos: Vec::new(),
            compaction: Some(bonsai_core::CompactionPolicy::default()),
            audit: AuditPolicy::default(),
            adapt: AdaptPolicy::default(),
            adapt_totals: bonsai_core::AdaptReport::default(),
            frames_processed: 0,
            publisher,
        }
    }

    /// The audit policy (default [`AuditPolicy::Off`]).
    pub fn audit_policy(&self) -> AuditPolicy {
        self.audit
    }

    /// Replaces the audit policy.
    pub fn set_audit_policy(&mut self, policy: AuditPolicy) {
        self.audit = policy;
    }

    /// The adaptive-sharding policy (default [`AdaptPolicy::Off`]).
    pub fn adapt_policy(&self) -> AdaptPolicy {
        self.adapt
    }

    /// Replaces the adaptive-sharding policy. Turning adaptation on
    /// never changes extraction output (global indices are stable
    /// across the targeted split/merge rebuilds); it only rebalances
    /// where the routed search work happens.
    pub fn set_adapt_policy(&mut self, policy: AdaptPolicy) {
        self.adapt = policy;
    }

    /// Accumulated adaptive-topology outcome since construction:
    /// total splits, merges, and typed rejections, plus the most
    /// recent due window's decision list.
    pub fn adapt_totals(&self) -> &bonsai_core::AdaptReport {
        &self.adapt_totals
    }

    /// The auto-compaction policy (`None` = disabled).
    pub fn compaction_policy(&self) -> Option<bonsai_core::CompactionPolicy> {
        self.compaction
    }

    /// Replaces the auto-compaction policy; `None` disables the
    /// per-frame rolling rebuilds entirely.
    pub fn set_compaction_policy(&mut self, policy: Option<bonsai_core::CompactionPolicy>) {
        self.compaction = policy;
    }

    /// The wrapped per-frame pipeline (parameters, preprocessing).
    pub fn pipeline(&self) -> &FramePipeline {
        &self.pipeline
    }

    /// The leaf-inspection mode.
    pub fn mode(&self) -> TreeMode {
        self.mode
    }

    /// The persistent extractor (diff inspection, router stats).
    pub fn extractor(&self) -> &crate::StreamingExtractor {
        &self.extractor
    }

    /// The epoch publisher over this pipeline's index snapshots.
    ///
    /// Epoch 0 is the empty pre-ingest index; each
    /// [`process_frame`](StreamingPipeline::process_frame) /
    /// [`try_process_frame`](StreamingPipeline::try_process_frame)
    /// publishes the post-frame index as the next epoch. Hand a clone
    /// of this `Arc` to a `bonsai-serve` `Server` (or pin epochs
    /// directly) to run radius queries **concurrently with ingest**:
    /// a pinned epoch stays bit-identical to the index as it was at
    /// that frame boundary, however many frames are ingested after.
    pub fn epoch_publisher(
        &self,
    ) -> &std::sync::Arc<bonsai_core::EpochPublisher<bonsai_core::RouterSnapshot>> {
        &self.publisher
    }

    /// Mutable extractor access for the chaos suite (fault injection
    /// between frames).
    #[cfg(feature = "chaos")]
    pub fn chaos_extractor_mut(&mut self) -> &mut crate::StreamingExtractor {
        &mut self.extractor
    }

    /// Runs preprocess → diff → incremental update → extract →
    /// post-process on a raw sensor frame, returning the same
    /// `FrameResult` a from-scratch [`FramePipeline::run`] produces.
    ///
    /// # Panics
    ///
    /// Panics where
    /// [`try_process_frame`](StreamingPipeline::try_process_frame)
    /// would return an error: a degenerate tolerance, or corruption a
    /// policy-triggered heal could not repair.
    pub fn process_frame(&mut self, raw_cloud: &[Point3]) -> FrameResult {
        // lint: allow(panic-free-serving) — documented panicking
        // convenience wrapper; the serving path is `try_process_frame`.
        self.try_process_frame(raw_cloud)
            .expect("streaming frame failed")
    }

    /// [`process_frame`](StreamingPipeline::process_frame) behind the
    /// serving `Result` boundary. If the audit policy is due it first
    /// audits the index and, on findings,
    /// [heals](crate::StreamingExtractor::heal) it — quarantined
    /// shards are rebuilt from the authoritative coordinates before
    /// the frame is served, so a transient corruption costs one
    /// rebuild, not the stream. Corruption that survives the heal is
    /// returned as [`PipelineError::CorruptionUnrecovered`].
    pub fn try_process_frame(
        &mut self,
        raw_cloud: &[Point3],
    ) -> Result<FrameResult, PipelineError> {
        let tolerance = self.pipeline.params().tolerance;
        if !tolerance.is_finite() || tolerance <= 0.0 {
            return Err(PipelineError::DegenerateTolerance(tolerance));
        }
        let due = match self.audit {
            AuditPolicy::Off => false,
            AuditPolicy::EveryFrame => true,
            AuditPolicy::Every(n) => n > 0 && self.frames_processed.is_multiple_of(u64::from(n)),
        };
        if due {
            let report = self.extractor.heal();
            if !report.clean {
                return Err(PipelineError::CorruptionUnrecovered(report.violations));
            }
        }
        self.frames_processed += 1;
        Ok(self.frame_inner(raw_cloud))
    }

    fn frame_inner(&mut self, raw_cloud: &[Point3]) -> FrameResult {
        let mut sim = SimEngine::disabled();
        let points = self.pipeline.preprocess(&mut sim, raw_cloud);
        let p = self.pipeline.params();
        let frame_globals = self.extractor.ingest_frame(&points);
        // Amortized fragmentation control: one shard checked per frame,
        // rebuilt only when the waste criterion fires. Output-neutral
        // (stable global indices), so it can run before extraction.
        if let Some(policy) = self.compaction {
            self.extractor.maybe_compact(&policy);
        }
        // Load-adaptive topology: when due, fold the query counters
        // accumulated since the last step and split/merge at most one
        // shard. Bounded by the oldest pinned epoch's staleness, and
        // output-neutral like compaction (stable global indices).
        if let AdaptPolicy::Every(n, policy) = self.adapt {
            if n > 0 && self.frames_processed.is_multiple_of(u64::from(n)) {
                let lag = self.publisher.epoch_lag();
                let report = self.extractor.maybe_adapt(&policy, lag);
                self.adapt_totals.splits += report.splits;
                self.adapt_totals.merges += report.merges;
                self.adapt_totals.rejected += report.rejected;
                self.adapt_totals.decisions = report.decisions;
            }
        }
        let output = self
            .extractor
            .extract(p.tolerance, p.min_cluster_size, p.max_cluster_size);

        // Remap global-index clusters to frame-local indices and
        // restore the canonical ordering `run` emits (members sorted,
        // clusters by first member — the seed order of the per-frame
        // BFS).
        self.frame_pos
            .resize(self.extractor.points_ever(), u32::MAX);
        for (pos, &g) in frame_globals.iter().enumerate() {
            // A non-finite frame point is never indexed (and can never
            // appear in a cluster).
            if g != crate::StreamingExtractor::UNINDEXED {
                self.frame_pos[g as usize] = pos as u32;
            }
        }
        let mut clusters: Vec<Vec<u32>> = output
            .clusters
            .iter()
            .map(|c| {
                let mut local: Vec<u32> = c.iter().map(|&g| self.frame_pos[g as usize]).collect();
                local.sort_unstable();
                local
            })
            .collect();
        clusters.sort_unstable_by_key(|c| c[0]);

        // Post-process exactly like `cluster_prepared`: per-cluster
        // boxes folded in ascending member order over the frame cloud.
        let mut boxes = Vec::with_capacity(clusters.len());
        for cluster in &clusters {
            // Same no-panic fold as `cluster_prepared`: extraction
            // never emits an empty cluster, and a defectively-empty
            // one contributes no box instead of killing the stream.
            let mut aabb: Option<Aabb> = None;
            for &idx in cluster {
                let pt = points[idx as usize];
                match &mut aabb {
                    Some(b) => b.insert(pt),
                    None => aabb = Some(Aabb::new(pt, pt)),
                }
            }
            boxes.extend(aabb);
        }

        // Publish the post-frame index as the next epoch: O(shards)
        // pointer clones, after which concurrent readers pinned on
        // older epochs keep their exact view while new queries see
        // this frame's mutations.
        self.publisher.publish(self.extractor.snapshot());

        FrameResult {
            output: ClusterOutput {
                clusters,
                search_stats: output.search_stats,
                build_stats: output.build_stats,
                compressed_bytes: output.compressed_bytes,
                coverage: output.coverage,
            },
            boxes,
            clustered_points: points.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_lidar::{DrivingSequence, SequenceConfig};

    #[test]
    fn full_pipeline_on_a_synthetic_frame_finds_objects() {
        let seq = DrivingSequence::new(SequenceConfig::small_test());
        let frame = seq.frame(0);
        let mut sim = SimEngine::disabled();
        let pipeline = FramePipeline::new(ClusterParams::default());
        let result = pipeline.run(&mut sim, &frame, TreeMode::Baseline);
        assert!(
            result.clustered_points > 100,
            "kept {}",
            result.clustered_points
        );
        assert!(
            !result.output.clusters.is_empty(),
            "no clusters found in {} points",
            result.clustered_points
        );
        assert_eq!(result.boxes.len(), result.output.clusters.len());
        // Boxes are object-sized, not scene-sized.
        for b in &result.boxes {
            let e = b.extent();
            assert!(e.x < 30.0 && e.y < 30.0, "box too large: {e}");
        }
    }

    #[test]
    fn bonsai_and_baseline_pipelines_agree_end_to_end() {
        let seq = DrivingSequence::new(SequenceConfig::small_test());
        let frame = seq.frame(3);
        let pipeline = FramePipeline::new(ClusterParams::default());
        let mut sim_a = SimEngine::disabled();
        let a = pipeline.run(&mut sim_a, &frame, TreeMode::Baseline);
        let mut sim_b = SimEngine::disabled();
        let b = pipeline.run(&mut sim_b, &frame, TreeMode::Bonsai);
        assert_eq!(a.output.clusters, b.output.clusters);
        assert_eq!(a.boxes, b.boxes);
    }

    /// A sharded pipeline run is output-identical to the single-tree
    /// run: same clusters, same boxes.
    #[test]
    fn sharded_pipeline_matches_single_tree_end_to_end() {
        let seq = DrivingSequence::new(SequenceConfig::small_test());
        let frame = seq.frame(2);
        let single = FramePipeline::new(ClusterParams::default());
        let sharded = FramePipeline::new(ClusterParams {
            shards: 4,
            ..ClusterParams::default()
        });
        for mode in [TreeMode::Baseline, TreeMode::Bonsai] {
            let mut sim_a = SimEngine::disabled();
            let a = single.run(&mut sim_a, &frame, mode);
            let mut sim_b = SimEngine::disabled();
            let b = sharded.run(&mut sim_b, &frame, mode);
            assert_eq!(a.output.clusters, b.output.clusters, "{mode:?}");
            assert_eq!(a.boxes, b.boxes, "{mode:?}");
            assert_eq!(a.clustered_points, b.clustered_points, "{mode:?}");
        }
    }

    /// The streaming pipeline must reproduce the rebuild-per-frame
    /// pipeline's FrameResult end to end, for every mode, single-shard
    /// and sharded, across a real frame sequence.
    #[test]
    fn streaming_pipeline_matches_rebuild_per_frame_end_to_end() {
        let seq = DrivingSequence::new(SequenceConfig::small_test());
        for mode in [
            TreeMode::Baseline,
            TreeMode::Bonsai,
            TreeMode::SoftwareCodec,
        ] {
            for shards in [0, 4] {
                let params = ClusterParams {
                    shards,
                    ..ClusterParams::default()
                };
                let rebuild = FramePipeline::new(params.clone());
                let mut streaming = StreamingPipeline::new(params, mode);
                for frame_idx in 0..4 {
                    let frame = seq.frame(frame_idx);
                    let mut sim = SimEngine::disabled();
                    let expect = rebuild.run(&mut sim, &frame, mode);
                    let got = streaming.process_frame(&frame);
                    assert_eq!(
                        got.output.clusters, expect.output.clusters,
                        "{mode:?} shards {shards} frame {frame_idx}"
                    );
                    assert_eq!(got.boxes, expect.boxes, "{mode:?} frame {frame_idx}");
                    assert_eq!(got.clustered_points, expect.clustered_points);
                }
                // Frames 1.. must have gone through the diff path, not
                // rebuilds.
                assert!(
                    streaming.extractor().points_ever() < 4 * streaming.extractor().num_live(),
                    "{mode:?}: streaming state grew like rebuild-per-frame"
                );
            }
        }
    }

    /// The streaming pipeline publishes one epoch per frame, and an
    /// epoch pinned mid-stream keeps answering exactly as the index
    /// stood at that frame boundary while ingest continues.
    #[test]
    fn pipeline_publishes_epochs_and_pins_survive_ingest() {
        let seq = DrivingSequence::new(SequenceConfig::small_test());
        let mut streaming = StreamingPipeline::new(
            ClusterParams {
                shards: 3,
                ..ClusterParams::default()
            },
            TreeMode::Bonsai,
        );
        let publisher = std::sync::Arc::clone(streaming.epoch_publisher());
        assert_eq!(publisher.epoch(), 0, "epoch 0 is the pre-ingest index");

        streaming.process_frame(&seq.frame(0));
        assert_eq!(publisher.epoch(), 1);
        let pinned = publisher.pin();
        let probe = seq.frame(0)[0];
        let mut scratch = bonsai_kdtree::SearchScratch::new();
        let mut frozen = Vec::new();
        let mut stats = bonsai_kdtree::SearchStats::default();
        pinned
            .value()
            .search_one(probe, 0.8, &mut scratch, &mut frozen, &mut stats);

        for frame_idx in 1..3 {
            streaming.process_frame(&seq.frame(frame_idx));
        }
        assert_eq!(publisher.epoch(), 3, "one epoch per frame");

        // The pinned epoch is bit-stable across the later ingests.
        let mut again = Vec::new();
        let mut stats2 = bonsai_kdtree::SearchStats::default();
        pinned
            .value()
            .search_one(probe, 0.8, &mut scratch, &mut again, &mut stats2);
        assert_eq!(frozen, again, "pinned epoch changed under ingest");
        assert_eq!(stats.nodes_visited, stats2.nodes_visited);
    }

    /// An adaptive streaming pipeline must emit the same clusters and
    /// boxes as the rebuild-per-frame pipeline: adaptation rebalances
    /// where routed work happens, never what a query answers.
    #[test]
    fn adaptive_pipeline_is_output_neutral() {
        let seq = DrivingSequence::new(SequenceConfig::small_test());
        let params = ClusterParams {
            shards: 4,
            ..ClusterParams::default()
        };
        let rebuild = FramePipeline::new(params.clone());
        let mut streaming = StreamingPipeline::new(params, TreeMode::Bonsai);
        // Aggressive knobs so the small test stream actually adapts.
        streaming.set_adapt_policy(AdaptPolicy::Every(
            1,
            bonsai_core::ShardPolicy {
                min_split_points: 64,
                min_queries: 16.0,
                split_ratio: 1.2,
                ..bonsai_core::ShardPolicy::default()
            },
        ));
        for frame_idx in 0..4 {
            let frame = seq.frame(frame_idx);
            let mut sim = SimEngine::disabled();
            let expect = rebuild.run(&mut sim, &frame, TreeMode::Bonsai);
            let got = streaming.process_frame(&frame);
            assert_eq!(
                got.output.clusters, expect.output.clusters,
                "frame {frame_idx}"
            );
            assert_eq!(got.boxes, expect.boxes, "frame {frame_idx}");
        }
        let totals = streaming.adapt_totals();
        assert!(
            totals.splits >= 1,
            "extraction load never triggered a split: {totals:?}"
        );
        let audit = streaming.extractor().router().audit();
        assert!(audit.is_empty(), "{audit:?}");
    }

    #[test]
    fn pipeline_attributes_all_stage_kernels() {
        let seq = DrivingSequence::new(SequenceConfig::small_test());
        let frame = seq.frame(1);
        let mut sim = SimEngine::new(&bonsai_sim::CpuConfig::a72_like());
        let pipeline = FramePipeline::new(ClusterParams::default());
        pipeline.run(&mut sim, &frame, TreeMode::Bonsai);
        for k in [
            Kernel::Preprocess,
            Kernel::Build,
            Kernel::Compress,
            Kernel::Traverse,
            Kernel::LeafScan,
            Kernel::ClusterLogic,
            Kernel::PostProcess,
        ] {
            assert!(sim.kernel_counters(k).micro_ops() > 0, "kernel {k} empty");
        }
        // The extract kernel dominates the end-to-end work, as in the
        // paper's Valgrind profile (~90 % of the task).
        let extract = sim.sum_counters(&Kernel::EXTRACT).micro_ops();
        let total = sim.totals().micro_ops();
        assert!(
            extract as f64 > total as f64 * 0.5,
            "extract {extract} of {total}"
        );
    }
}
