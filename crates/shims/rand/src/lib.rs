//! Offline stand-in for the parts of the [`rand`] crate this workspace
//! uses (`StdRng::seed_from_u64`, `gen_range`, `gen_bool`).
//!
//! The build environment cannot reach a crates.io registry, so the
//! workspace vendors this API-compatible subset instead of the real
//! crate. The generator is xoshiro256**, seeded SplitMix64-style — a
//! high-quality deterministic stream, which is all the synthetic-LiDAR
//! code needs (it never asks for cryptographic randomness).
//!
//! [`rand`]: https://crates.io/crates/rand

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling methods (subset of `rand::Rng`), blanket-implemented for
/// every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample(self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        unit_f64(self.next_u64()) < p
    }
}

/// The raw 64-bit source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<T: RngCore> Rng for T {}

/// Scalars `gen_range` can produce. Mirrors `rand::distributions::
/// uniform::SampleUniform`; its job here is pruning reference types
/// during inference so float literals resolve like they do with the
/// real crate.
pub trait SampleUniform {}
macro_rules! sample_uniform {
    ($($t:ty),*) => {$(impl SampleUniform for $t {})*};
}
sample_uniform!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that can produce a uniform sample from 64 random bits.
pub trait SampleRange<T> {
    /// Maps the random word into the range.
    fn sample(self, word: u64) -> T;
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, word: u64) -> f32 {
        assert!(self.start < self.end, "empty gen_range");
        let v = self.start + (self.end - self.start) * unit_f64(word) as f32;
        // The f32 rounding of start + span*u can land exactly on the
        // excluded end bound; keep the range half-open like real rand.
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample(self, word: u64) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let v = self.start + (self.end - self.start) * unit_f64(word);
        if v >= self.end {
            self.end.next_down().max(self.start)
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, word: u64) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u128;
                self.start + (word as u128 % span) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, word: u64) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (word as u128 % span) as i128) as $t
            }
        }
    )*};
}
signed_sample_range!(i8, i16, i32, i64, isize);

/// Maps 53 of the 64 bits into `[0, 1)`.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 / (1u64 << 53) as f64
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng`: xoshiro256** seeded through
    /// SplitMix64 (the reference seeding procedure).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f32..1.0), b.gen_range(0.0f32..1.0));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let f = rng.gen_range(-3.0f32..3.0);
            assert!((-3.0..3.0).contains(&f));
            let i = rng.gen_range(5i32..9);
            assert!((5..9).contains(&i));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.gen_range(0u64..u64::MAX) == b.gen_range(0u64..u64::MAX))
            .count();
        assert_eq!(same, 0);
    }
}
