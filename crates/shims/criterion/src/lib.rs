//! Offline stand-in for the subset of [`criterion`] this workspace uses.
//!
//! The build environment cannot reach a crates.io registry, so the
//! workspace vendors this API-compatible shim. It keeps the measurement
//! honest — warm-up, then timed batches until the measurement window
//! elapses, reporting mean ns/iteration and throughput — but drops the
//! statistical machinery (outlier analysis, HTML reports, comparison
//! with saved baselines).
//!
//! Benches run with `cargo bench`. Passing `--bench <filter>` (or any
//! positional argument) filters benchmark ids by substring, like the
//! real crate. `--test` runs every benchmark exactly once (the mode
//! `cargo test --benches` uses).
//!
//! [`criterion`]: https://crates.io/crates/criterion

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration workload descriptor used for derived throughput rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A two-part benchmark id (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter rendering.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let mut filter = None;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Cargo appends a bare `--bench` after any positional
                // filter; only treat it as `--bench <filter>` when a
                // value actually follows.
                "--bench" => {
                    if let Some(f) = args.next() {
                        filter = Some(f);
                    }
                }
                s if s.starts_with("--") => {} // ignore unknown harness flags
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        self.benchmark_group("default").bench_function(id, f);
    }
}

/// A group of benchmarks sharing measurement settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility (the shim sizes samples by time).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let full_id = format!("{}/{}", self.name, id.into());
        if let Some(filter) = &self.criterion.filter {
            if !full_id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warm_up: self.warm_up_time,
            measurement: self.measurement_time,
            test_mode: self.criterion.test_mode,
            result: None,
        };
        f(&mut bencher);
        let Some((iters, elapsed)) = bencher.result else {
            println!("{full_id:<60} (no measurement)");
            return;
        };
        if self.criterion.test_mode {
            println!("{full_id:<60} ok (test mode)");
            return;
        }
        let ns = elapsed.as_nanos() as f64 / iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.3} Melem/s", n as f64 / ns * 1e3)
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.3} MiB/s", n as f64 / ns * 1e9 / (1024.0 * 1024.0))
            }
            None => String::new(),
        };
        println!("{full_id:<60} {ns:>14.1} ns/iter{rate}");
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id.id, |b| f(b, input));
    }

    /// Ends the group (printing happens per benchmark).
    pub fn finish(self) {}
}

/// Runs the measured closure.
#[derive(Debug)]
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine` over batches until the measurement window
    /// elapses; records total iterations and elapsed time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.result = Some((1, Duration::from_nanos(1)));
            return;
        }
        // Warm-up, and calibrate a batch size targeting ~1 ms batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as u64 / warm_iters.max(1);
        let batch = (1_000_000 / per_iter.max(1)).clamp(1, 1_000_000);

        let mut iters = 0u64;
        let start = Instant::now();
        while start.elapsed() < self.measurement {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        self.result = Some((iters, start.elapsed()));
    }
}

/// Declares a benchmark group function, as the real crate does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        let mut c = Criterion {
            filter: None,
            test_mode: false,
        };
        let mut group = c.benchmark_group("shim");
        group.warm_up_time(Duration::from_millis(5));
        group.measurement_time(Duration::from_millis(20));
        group.throughput(Throughput::Elements(4));
        let mut count = 0u64;
        group.bench_function("spin", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.finish();
        assert!(count > 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            filter: None,
            test_mode: true,
        };
        let mut count = 0u64;
        c.bench_function("once", |b| b.iter(|| count += 1));
        assert_eq!(count, 1);
    }

    #[test]
    fn filter_skips_non_matching_ids() {
        let mut c = Criterion {
            filter: Some("matches_nothing".into()),
            test_mode: false,
        };
        let mut ran = false;
        c.bench_function("skipped", |b| {
            ran = true;
            b.iter(|| 0)
        });
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_formats_function_and_parameter() {
        assert_eq!(BenchmarkId::new("f", 10).id, "f/10");
    }
}
