//! Offline stand-in for the subset of [`proptest`] this workspace uses.
//!
//! The build environment cannot reach a crates.io registry, so the
//! workspace vendors this API-compatible shim: the [`proptest!`] macro,
//! [`Strategy`](strategy::Strategy) with `prop_map`, range/tuple/array
//! strategies, `prop::collection::vec`, `prop::sample::Index`,
//! [`any`](arbitrary::any) and the `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **Basic shrinking only** — the real crate walks a shrink tree; this
//!   shim re-samples a failing case at increasing *shrink levels*, each
//!   level halving numeric ranges (toward their start) and truncating
//!   collection lengths (toward their minimum) via
//!   [`Strategy::sample_shrunk`](strategy::Strategy::sample_shrunk). The
//!   most-shrunk inputs that still fail are reported alongside the
//!   original failure.
//! * **Deterministic generation** — cases derive from a fixed per-test
//!   seed, so failures always reproduce.
//! * `any::<f32>()` generates every value class except NaN (whose
//!   payload bits are implementation-defined and would make bit-exact
//!   comparisons in tests depend on the host's NaN conventions).
//!
//! [`proptest`]: https://crates.io/crates/proptest

#![forbid(unsafe_code)]

/// Shrink levels the [`proptest!`] runner tries after a failure. Each
/// level halves numeric spans and collection-length spans once more, so
/// level 16 has collapsed every range by 2¹⁶.
pub const MAX_SHRINK_LEVELS: u32 = 16;

/// Deterministic xoshiro256** generation state for one test case.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xCBF29CE484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001B3);
        }
        let mut sm = h ^ case.wrapping_mul(0x9E3779B97F4A7C15);
        let mut next = move || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// A uniform index in `0..bound` (`bound > 0`).
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Run-time configuration of a `proptest!` block.
pub mod test_runner {
    /// Subset of `proptest::test_runner::Config`.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A source of random values of one type (subset of
    /// `proptest::strategy::Strategy`; sampling plus level-based
    /// shrinking instead of shrink trees).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Draws one *simplified* value: each shrink `level` halves
        /// numeric spans (toward the range start) and collection-length
        /// spans (toward the minimum length) once more. Level 0 is
        /// [`sample`](Strategy::sample). Strategies without a natural
        /// simpler form (e.g. `any::<T>()`) fall back to plain
        /// sampling.
        fn sample_shrunk(&self, rng: &mut TestRng, level: u32) -> Self::Value {
            let _ = level;
            self.sample(rng)
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// `span >> level` without shift overflow.
    fn shrink_span_u128(span: u128, level: u32) -> u128 {
        span.checked_shr(level).unwrap_or(0)
    }

    /// A constant strategy (always yields a clone of its value).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
        fn sample_shrunk(&self, rng: &mut TestRng, level: u32) -> O {
            (self.f)(self.inner.sample_shrunk(rng, level))
        }
    }

    /// A uniform choice between same-typed strategies (the shape
    /// `prop_oneof!` builds).
    #[derive(Debug, Clone)]
    pub struct Union<S> {
        arms: Vec<S>,
    }

    impl<S: Strategy> Union<S> {
        /// A union over `arms` (must be non-empty).
        pub fn new(arms: Vec<S>) -> Union<S> {
            assert!(!arms.is_empty(), "empty prop_oneof!");
            Union { arms }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            let i = rng.below(self.arms.len());
            self.arms[i].sample(rng)
        }
        fn sample_shrunk(&self, rng: &mut TestRng, level: u32) -> S::Value {
            // Same arm choice as `sample` (same rng stream), shrunk
            // within the arm.
            let i = rng.below(self.arms.len());
            self.arms[i].sample_shrunk(rng, level)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * rng.unit() as f32;
            // f32 rounding of start + span*u can land exactly on the
            // excluded end; keep the strategy half-open.
            if v >= self.end {
                self.end.next_down().max(self.start)
            } else {
                v
            }
        }
        fn sample_shrunk(&self, rng: &mut TestRng, level: u32) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            let scale = 0.5f32.powi(level.min(127) as i32);
            let v = self.start + (self.end - self.start) * scale * rng.unit() as f32;
            if v >= self.end {
                self.end.next_down().max(self.start)
            } else {
                v
            }
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * rng.unit();
            if v >= self.end {
                self.end.next_down().max(self.start)
            } else {
                v
            }
        }
        fn sample_shrunk(&self, rng: &mut TestRng, level: u32) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let scale = 0.5f64.powi(level.min(1023) as i32);
            let v = self.start + (self.end - self.start) * scale * rng.unit();
            if v >= self.end {
                self.end.next_down().max(self.start)
            } else {
                v
            }
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
                fn sample_shrunk(&self, rng: &mut TestRng, level: u32) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let span = shrink_span_u128(span, level).max(1);
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                    (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
                fn sample_shrunk(&self, rng: &mut TestRng, level: u32) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                    let span = shrink_span_u128(span, level).max(1);
                    (*self.start() as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
                fn sample_shrunk(&self, rng: &mut TestRng, level: u32) -> Self::Value {
                    ($(self.$idx.sample_shrunk(rng, level),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

/// Default strategies per type (`any::<T>()`).
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f32 {
        /// Every `f32` class except NaN: zeros, infinities, subnormals
        /// and arbitrary finite bit patterns.
        fn arbitrary(rng: &mut TestRng) -> f32 {
            match rng.next_u64() % 16 {
                0 => 0.0,
                1 => -0.0,
                2 => f32::INFINITY,
                3 => f32::NEG_INFINITY,
                4 => f32::from_bits((rng.next_u64() as u32) & 0x807F_FFFF), // subnormal/zero
                _ => {
                    let mut bits = rng.next_u64() as u32;
                    if bits & 0x7F80_0000 == 0x7F80_0000 {
                        bits &= 0xFF80_0000; // squash NaN payloads to ±inf
                    }
                    f32::from_bits(bits)
                }
            }
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f32::arbitrary(rng) as f64
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            std::array::from_fn(|_| T::arbitrary(rng))
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A strategy for `Vec<S::Value>` with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The strategy returned by [`vec`](fn@vec).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.max - self.size.min + 1;
            let len = self.size.min + rng.below(span);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
        fn sample_shrunk(&self, rng: &mut TestRng, level: u32) -> Vec<S::Value> {
            // Truncate toward the minimum length, halving the length
            // span per level; elements shrink along.
            let span = self.size.max - self.size.min + 1;
            let span = span.checked_shr(level).unwrap_or(0).max(1);
            let len = self.size.min + rng.below(span);
            (0..len)
                .map(|_| self.element.sample_shrunk(rng, level))
                .collect()
        }
    }
}

/// Fixed-size array strategies (`prop::array`).
pub mod array {
    use super::strategy::Strategy;
    use super::TestRng;

    /// A strategy for `[S::Value; N]` from one element strategy.
    #[derive(Debug, Clone)]
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.sample(rng))
        }
        fn sample_shrunk(&self, rng: &mut TestRng, level: u32) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.sample_shrunk(rng, level))
        }
    }

    macro_rules! uniform_fn {
        ($($name:ident => $n:literal),*) => {$(
            /// An array of independent draws from `element`.
            pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy { element }
            }
        )*};
    }
    uniform_fn!(uniform2 => 2, uniform3 => 3, uniform4 => 4);
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::arbitrary::Arbitrary;
    use super::TestRng;

    /// An index into a collection whose length is only known inside the
    /// test body (subset of `proptest::sample::Index`).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Projects onto `0..len` (`len > 0`).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64() as usize)
        }
    }
}

/// Everything a `proptest!`-using test file needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module namespace the real crate exposes.
    pub mod prop {
        pub use crate::array;
        pub use crate::collection;
        pub use crate::sample;
        pub use crate::strategy;
    }
}

/// Asserts a condition, reporting the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality, reporting the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality, reporting the generated inputs on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// A uniform choice among same-typed strategies.
///
/// The real crate supports weighted, heterogeneous arms; this shim
/// supports the unweighted, same-typed form the workspace uses.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($arm),+])
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
///
/// Supports the optional leading `#![proptest_config(...)]` attribute.
/// On failure the macro prints the case number and every generated
/// input, then *shrinks*: the same case is re-sampled at increasing
/// shrink levels (each halving numeric ranges and truncating
/// collections — see
/// [`Strategy::sample_shrunk`](strategy::Strategy::sample_shrunk)), the
/// most-shrunk inputs that still fail are reported, and the original
/// panic is re-raised. Cases are deterministic per test name, so both
/// the failure and its shrink reproduce on rerun.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            use $crate::strategy::Strategy as _;
            let cases = ($cfg).cases as u64;
            for case in 0..cases {
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = ($strat).sample(&mut rng);)+
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest shim: {} failed at case {case}/{cases} with inputs:",
                        stringify!($name),
                    );
                    $(eprintln!("  {} = {:?}", stringify!($arg), $arg);)+
                    // Shrink: re-sample the failing case with
                    // progressively halved ranges / truncated
                    // collections and keep the simplest reproduction.
                    let mut simplest: Option<(u32, ::std::string::String)> = None;
                    for level in 1..=$crate::MAX_SHRINK_LEVELS {
                        let mut rng = $crate::TestRng::for_case(
                            concat!(module_path!(), "::", stringify!($name)),
                            case,
                        );
                        $(let $arg = ($strat).sample_shrunk(&mut rng, level);)+
                        let shrunk = ::std::panic::catch_unwind(
                            ::std::panic::AssertUnwindSafe(|| $body));
                        if shrunk.is_err() {
                            let mut report = ::std::string::String::new();
                            $(report.push_str(
                                &::std::format!("  {} = {:?}\n", stringify!($arg), $arg));)+
                            simplest = Some((level, report));
                        }
                    }
                    if let Some((level, report)) = simplest {
                        eprintln!(
                            "proptest shim: simplest failing inputs (shrink level {level}):",
                        );
                        eprint!("{report}");
                    } else {
                        eprintln!("proptest shim: no shrunk re-sample still failed");
                    }
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_sample_in_bounds() {
        use crate::strategy::Strategy;
        let mut rng = crate::TestRng::for_case("self_test", 0);
        for _ in 0..1000 {
            let x = (-5.0f32..5.0).sample(&mut rng);
            assert!((-5.0..5.0).contains(&x));
            let n = (3usize..=7).sample(&mut rng);
            assert!((3..=7).contains(&n));
            let v = prop::collection::vec(0u16..100, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&e| e < 100));
            let a = prop::array::uniform3(0i32..4).sample(&mut rng);
            assert!(a.iter().all(|&e| (0..4).contains(&e)));
        }
    }

    #[test]
    fn any_f32_never_generates_nan() {
        use crate::strategy::Strategy;
        let mut rng = crate::TestRng::for_case("nan_test", 1);
        for _ in 0..100_000 {
            assert!(!any::<f32>().sample(&mut rng).is_nan());
        }
    }

    #[test]
    fn shrinking_collapses_ranges_toward_their_start() {
        use crate::strategy::Strategy;
        let mut rng = crate::TestRng::for_case("shrink_ranges", 0);
        for _ in 0..1000 {
            // Deep shrink levels collapse numeric ranges onto the start
            // and vectors onto their minimum length.
            let x = (0.05f32..10.0).sample_shrunk(&mut rng, crate::MAX_SHRINK_LEVELS);
            assert!((0.05..0.06).contains(&x), "f32 not collapsed: {x}");
            let n = (3usize..=200).sample_shrunk(&mut rng, crate::MAX_SHRINK_LEVELS);
            assert_eq!(n, 3, "usize not collapsed");
            let v = prop::collection::vec(0u16..100, 1..=64)
                .sample_shrunk(&mut rng, crate::MAX_SHRINK_LEVELS);
            assert_eq!(v.len(), 1, "vec not truncated");
            assert_eq!(v[0], 0, "element not shrunk");
            // Level 0 must behave exactly like `sample`.
            let mut a = crate::TestRng::for_case("shrink_l0", 7);
            let mut b = crate::TestRng::for_case("shrink_l0", 7);
            assert_eq!(
                (0.0f32..5.0).sample(&mut a).to_bits(),
                (0.0f32..5.0).sample_shrunk(&mut b, 0).to_bits()
            );
        }
    }

    #[test]
    fn shrinking_stays_in_bounds_at_every_level() {
        use crate::strategy::Strategy;
        let mut rng = crate::TestRng::for_case("shrink_bounds", 3);
        for level in 0..=2 * crate::MAX_SHRINK_LEVELS {
            for _ in 0..200 {
                let x = (-5.0f32..5.0).sample_shrunk(&mut rng, level);
                assert!((-5.0..5.0).contains(&x), "level {level}: {x}");
                let n = (10i32..20).sample_shrunk(&mut rng, level);
                assert!((10..20).contains(&n), "level {level}: {n}");
                let v = prop::collection::vec(0u8..10, 2..6).sample_shrunk(&mut rng, level);
                assert!((2..6).contains(&v.len()), "level {level}: {}", v.len());
                let (a, b) = (0u32..7, 1.0f64..2.0).sample_shrunk(&mut rng, level);
                assert!(a < 7 && (1.0..2.0).contains(&b), "level {level}");
                let m = (0u32..1000)
                    .prop_map(|x| x * 2)
                    .sample_shrunk(&mut rng, level);
                assert_eq!(m % 2, 0);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let s = prop::collection::vec((0.0f32..1.0, 0u8..9).prop_map(|(f, i)| (f, i)), 1..20);
        let a = s.sample(&mut crate::TestRng::for_case("det", 3));
        let b = s.sample(&mut crate::TestRng::for_case("det", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_runs(x in 0.0f32..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(2))]

        /// Drives the runner's whole failure path — original report,
        /// the 16-level shrink loop, re-panic — end to end.
        #[test]
        #[should_panic(expected = "assertion failed")]
        fn failing_property_exercises_the_shrink_loop(
            v in prop::collection::vec(0u32..100, 1..=32),
        ) {
            prop_assert!(v.is_empty()); // Always fails: v has ≥ 1 element.
        }
    }
}
