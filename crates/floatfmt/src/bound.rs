//! The paper's worst-case rounding-error bound (Eq. 6) and the
//! `part_error_mem` lookup table of the square-of-differences FU (Fig. 7).

use crate::Half;

/// The maximum absolute rounding error of an `f32 → f16` conversion whose
/// result has the given 5-bit biased exponent field — the paper's Eq. 6:
///
/// ```text
/// max(δB) = 2^(exponent − bias) × 2⁻¹¹
/// ```
///
/// Two refinements beyond the equation as printed, both conservative:
///
/// * **exponent field 0** (zero / subnormal result): the f16 subnormal
///   quantum is 2⁻²⁴, so the rounding error is at most 2⁻²⁵;
/// * **exponent field 31** (infinity / NaN result): the conversion
///   overflowed, no finite bound exists, and the caller must fall back to
///   full precision — represented as `f32::INFINITY` so every shell test
///   is inconclusive.
///
/// The bound is evaluated with the exponent of the *rounded* value `B′`,
/// which the paper notes is the only exponent available at run time.
/// Rounding to nearest can only keep the exponent or push it up by one
/// (e.g. `1.9999 → 2.0`), so using `B′`'s exponent can only overestimate
/// the true bound — the safe direction.
///
/// # Examples
///
/// ```
/// use bonsai_floatfmt::{max_rounding_error, Half};
///
/// let h = Half::from_f32(100.03);
/// let err = (h.to_f32() - 100.03).abs();
/// assert!(err <= max_rounding_error(h.exponent_field()));
/// ```
pub fn max_rounding_error(exponent_field: u8) -> f32 {
    match exponent_field {
        0 => (2.0f32).powi(-25),
        31 => f32::INFINITY,
        e => (2.0f32).powi(e as i32 - Half::BIAS - 11),
    }
}

/// One row of [`PartErrorMem`]: the two exponent-derived factors of the
/// paper's Eq. 9,
///
/// ```text
/// max(εsd) = 2·|A − B′|·|max(δB)| + max(δB)²
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartErrorEntry {
    /// `2 · max(δB)` — multiplied by `|A − B′|` in the FU.
    pub two_max_delta: f32,
    /// `max(δB)²` — added as-is.
    pub max_delta_sq: f32,
}

/// The 32-entry lookup table (`part_error_mem` in Figure 7) indexed by the
/// f16 exponent field of `B′`.
///
/// The paper pre-computes `2·|max(δB)|` and `max(δB)²` for all 2⁵ = 32
/// possible exponents so the FU can fetch them in one cycle. This struct
/// is that ROM; it is embedded in every square-of-differences FU of the
/// `bonsai-isa` crate.
///
/// # Examples
///
/// ```
/// use bonsai_floatfmt::{max_rounding_error, PartErrorMem};
///
/// let mem = PartErrorMem::new();
/// let e = mem.lookup(18);
/// assert_eq!(e.two_max_delta, 2.0 * max_rounding_error(18));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PartErrorMem {
    entries: [PartErrorEntry; 32],
}

impl PartErrorMem {
    /// Builds the ROM contents from [`max_rounding_error`].
    ///
    /// Every entry is an exact power of two (or `∞` on the overflow
    /// row) — the property that lets the AVX2 shell sweep of
    /// `bonsai-core` synthesize the ROM in-register from the exponent
    /// fields, pinned bit-for-bit against
    /// [`lookup`](PartErrorMem::lookup) by its
    /// `synthesized_rom_matches_lut` test.
    pub fn new() -> PartErrorMem {
        let mut entries = [PartErrorEntry {
            two_max_delta: 0.0,
            max_delta_sq: 0.0,
        }; 32];
        for (e, entry) in entries.iter_mut().enumerate() {
            let d = max_rounding_error(e as u8);
            *entry = PartErrorEntry {
                two_max_delta: 2.0 * d,
                max_delta_sq: d * d,
            };
        }
        PartErrorMem { entries }
    }

    /// Reads the entry for an exponent field.
    ///
    /// # Panics
    ///
    /// Panics if `exponent_field >= 32` (it is a 5-bit field).
    pub fn lookup(&self, exponent_field: u8) -> PartErrorEntry {
        self.entries[exponent_field as usize]
    }

    /// Evaluates Eq. 9 for a computed difference `|A − B′|` and the
    /// exponent field of `B′`: the worst-case error of `(A − B′)²` as an
    /// estimate of `(A − B)²`.
    pub fn max_squared_difference_error(&self, abs_diff: f32, exponent_field: u8) -> f32 {
        let e = self.lookup(exponent_field);
        e.two_max_delta * abs_diff + e.max_delta_sq
    }
}

impl Default for PartErrorMem {
    fn default() -> PartErrorMem {
        PartErrorMem::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq6_matches_paper_formula_for_normals() {
        for e in 1u8..=30 {
            let expect = (2.0f32).powi(e as i32 - 15) * (2.0f32).powi(-11);
            assert_eq!(max_rounding_error(e), expect, "exponent field {e}");
        }
    }

    #[test]
    fn bound_holds_for_dense_f32_sweep() {
        // The actual conversion error must never exceed the bound derived
        // from the *converted* value's exponent.
        let mut x = 1e-8f32;
        while x < 6e4 {
            for v in [x, -x, x * 1.2345] {
                let h = Half::from_f32(v);
                let err = (h.to_f32() as f64 - v as f64).abs();
                let bound = max_rounding_error(h.exponent_field()) as f64;
                assert!(err <= bound, "v={v} err={err} bound={bound}");
            }
            x *= 1.0173;
        }
    }

    #[test]
    fn subnormal_bound_is_half_quantum() {
        assert_eq!(max_rounding_error(0), (2.0f32).powi(-25));
        // A value that rounds to an f16 subnormal obeys it.
        let v = 3.1e-8f32;
        let h = Half::from_f32(v);
        assert_eq!(h.exponent_field(), 0);
        assert!((h.to_f32() - v).abs() <= max_rounding_error(0));
    }

    #[test]
    fn infinite_exponent_forces_recompute() {
        assert!(max_rounding_error(31).is_infinite());
    }

    #[test]
    fn lut_agrees_with_direct_formula() {
        let mem = PartErrorMem::new();
        for e in 0u8..32 {
            let d = max_rounding_error(e);
            let entry = mem.lookup(e);
            if d.is_finite() {
                assert_eq!(entry.two_max_delta, 2.0 * d);
                assert_eq!(entry.max_delta_sq, d * d);
            } else {
                assert!(entry.two_max_delta.is_infinite());
            }
        }
    }

    #[test]
    fn eq9_bounds_true_squared_difference_error() {
        let mem = PartErrorMem::new();
        let mut rng_state = 0x12345678u64;
        let mut next = || {
            // Small xorshift so the test has no dependencies.
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state as f64 / u64::MAX as f64) as f32
        };
        for _ in 0..100_000 {
            let a = (next() - 0.5) * 240.0; // query coordinate, f32
            let b = (next() - 0.5) * 240.0; // original point coordinate
            let bp = Half::from_f32(b);
            let b16 = bp.to_f32();
            let true_sq = (a as f64 - b as f64) * (a as f64 - b as f64);
            let approx_sq = (a as f64 - b16 as f64) * (a as f64 - b16 as f64);
            // Evaluate Eq. 9 in f64 so the test checks the mathematical
            // bound itself; the f32 evaluation done by the FU adds its own
            // rounding, which `bonsai-core`'s shell-slack absorbs.
            let entry = mem.lookup(bp.exponent_field());
            let bound = entry.two_max_delta as f64 * (a as f64 - b16 as f64).abs()
                + entry.max_delta_sq as f64;
            assert!(
                (true_sq - approx_sq).abs() <= bound,
                "a={a} b={b} err={} bound={bound}",
                (true_sq - approx_sq).abs()
            );
        }
    }
}
