use std::fmt;

use crate::MiniFormat;

/// The candidate reduced representations the paper evaluates in Table I.
///
/// Each variant names a concrete [`MiniFormat`]; the Table I experiment
/// quantizes every leaf coordinate through one of these and measures how
/// often the radius-search classification (Eq. 3) flips relative to the
/// 32-bit baseline.
///
/// # Examples
///
/// ```
/// use bonsai_floatfmt::ReducedFormat;
///
/// let x = 57.1234f32;
/// let err16 = (ReducedFormat::Ieee16.quantize_value(x) - x).abs();
/// let err24 = (ReducedFormat::Custom24.quantize_value(x) - x).abs();
/// assert!(err24 < err16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReducedFormat {
    /// IEEE-754 binary16 (1/5/10) — the format K-D Bonsai adopts.
    Ieee16,
    /// bfloat16 (1/8/7) — the machine-learning format.
    BFloat16,
    /// The custom 24-bit format (1/5/18) used as a midway reference.
    Custom24,
}

impl ReducedFormat {
    /// All formats in the order of the paper's Table I rows.
    pub const ALL: [ReducedFormat; 3] = [
        ReducedFormat::Ieee16,
        ReducedFormat::BFloat16,
        ReducedFormat::Custom24,
    ];

    /// The underlying format description.
    pub fn mini_format(self) -> MiniFormat {
        match self {
            ReducedFormat::Ieee16 => MiniFormat::IEEE_HALF,
            ReducedFormat::BFloat16 => MiniFormat::BFLOAT16,
            ReducedFormat::Custom24 => MiniFormat::FLOAT24,
        }
    }

    /// Storage bits per coordinate.
    pub fn bits(self) -> u32 {
        self.mini_format().total_bits()
    }

    /// The `f32` value of `x` after narrowing to this format — i.e. the
    /// value radius search would see when computing with compressed data.
    pub fn quantize_value(self, x: f32) -> f32 {
        self.mini_format().round_trip(x)
    }

    /// The paper's display name for the format (Table I).
    pub fn paper_name(self) -> &'static str {
        match self {
            ReducedFormat::Ieee16 => "IEEE-754 16-bits",
            ReducedFormat::BFloat16 => "bfloat 16",
            ReducedFormat::Custom24 => "Custom float 24",
        }
    }
}

impl fmt::Display for ReducedFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_widths_match_table1() {
        assert_eq!(ReducedFormat::Ieee16.bits(), 16);
        assert_eq!(ReducedFormat::BFloat16.bits(), 16);
        assert_eq!(ReducedFormat::Custom24.bits(), 24);
    }

    #[test]
    fn ieee16_beats_bfloat_in_precision_at_lidar_scale() {
        // Section III-B: same width, but binary16 balances precision
        // better for values in a LiDAR's ±120 m range.
        let mut worse = 0;
        let mut total = 0;
        let mut x = 0.05f32;
        while x < 120.0 {
            let e16 = (ReducedFormat::Ieee16.quantize_value(x) - x).abs();
            let ebf = (ReducedFormat::BFloat16.quantize_value(x) - x).abs();
            if e16 > ebf {
                worse += 1;
            }
            total += 1;
            x *= 1.0173;
        }
        assert_eq!(
            worse, 0,
            "binary16 worse than bfloat16 in {worse}/{total} samples"
        );
    }

    #[test]
    fn lidar_range_fits_all_formats() {
        // None of the formats overflow at the HDL-64E's 120 m range
        // (Section III-B: no Table I error is due to lack of range).
        for fmt in ReducedFormat::ALL {
            let q = fmt.quantize_value(120.0);
            assert!(q.is_finite());
            assert!((q - 120.0).abs() < 1.0);
        }
    }

    #[test]
    fn display_matches_paper_rows() {
        assert_eq!(ReducedFormat::Ieee16.to_string(), "IEEE-754 16-bits");
        assert_eq!(ReducedFormat::BFloat16.to_string(), "bfloat 16");
        assert_eq!(ReducedFormat::Custom24.to_string(), "Custom float 24");
    }
}
