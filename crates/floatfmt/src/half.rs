/// An IEEE-754 binary16 ("half precision") value.
///
/// This is the storage format of compressed k-d tree leaf coordinates
/// (paper Section III-B): 1 sign bit, 5 exponent bits (bias 15), 10
/// mantissa bits. The `LDSPZPB` Bonsai instruction performs exactly this
/// `f32 → f16` conversion when loading points into the ZipPts buffer.
///
/// Conversions use dedicated bit manipulation (not the generic
/// [`MiniFormat`](crate::MiniFormat) path) because decompression converts
/// every leaf coordinate on every radius-search visit — it is the hottest
/// conversion in the simulator. Unit tests cross-check it against the
/// generic implementation over the full 16-bit space and a wide `f32`
/// sweep.
///
/// # Examples
///
/// ```
/// use bonsai_floatfmt::Half;
///
/// let h = Half::from_f32(8.2);
/// assert_eq!(h.sign_exponent(), 0b0_10010); // positive, unbiased exponent 3
/// assert!((h.to_f32() - 8.2).abs() < 8.0 / 2048.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Half(u16);

impl Half {
    /// Positive zero.
    pub const ZERO: Half = Half(0);

    /// The exponent bias (15).
    pub const BIAS: i32 = 15;

    /// Number of mantissa bits (10).
    pub const MANTISSA_BITS: u32 = 10;

    /// Creates a `Half` from its raw bit pattern.
    pub const fn from_bits(bits: u16) -> Half {
        Half(bits)
    }

    /// The raw bit pattern.
    pub const fn to_bits(self) -> u16 {
        self.0
    }

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(x: f32) -> Half {
        Half(f32_to_f16_bits(x))
    }

    /// Converts to `f32` (exact — every binary16 value is an `f32` value).
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }

    /// The 6-bit `<sign, exponent>` tuple — the unit the Bonsai
    /// compress/decompress logic shares across a leaf (Figure 6).
    ///
    /// Bit 5 is the sign, bits 4..0 the biased exponent field.
    pub const fn sign_exponent(self) -> u8 {
        (self.0 >> Self::MANTISSA_BITS) as u8
    }

    /// The 10-bit mantissa field.
    pub const fn mantissa(self) -> u16 {
        self.0 & 0x3FF
    }

    /// The 5-bit biased exponent field.
    pub const fn exponent_field(self) -> u8 {
        ((self.0 >> Self::MANTISSA_BITS) & 0x1F) as u8
    }

    /// Reassembles a `Half` from a 6-bit `<sign, exponent>` tuple and a
    /// 10-bit mantissa — the decompression direction of Figure 6.
    ///
    /// # Examples
    ///
    /// ```
    /// use bonsai_floatfmt::Half;
    /// let h = Half::from_f32(-12.75);
    /// let rebuilt = Half::from_parts(h.sign_exponent(), h.mantissa());
    /// assert_eq!(rebuilt, h);
    /// ```
    pub const fn from_parts(sign_exponent: u8, mantissa: u16) -> Half {
        Half((((sign_exponent & 0x3F) as u16) << Self::MANTISSA_BITS) | (mantissa & 0x3FF))
    }

    /// Whether this value is NaN.
    pub const fn is_nan(self) -> bool {
        self.exponent_field() == 0x1F && self.mantissa() != 0
    }

    /// Whether this value is positive or negative infinity.
    pub const fn is_infinite(self) -> bool {
        self.exponent_field() == 0x1F && self.mantissa() == 0
    }
}

impl From<f32> for Half {
    fn from(x: f32) -> Half {
        Half::from_f32(x)
    }
}

impl From<Half> for f32 {
    fn from(h: Half) -> f32 {
        h.to_f32()
    }
}

impl std::fmt::Display for Half {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let man = bits & 0x7F_FFFF;

    if exp == 0xFF {
        // Infinity / NaN.
        return if man == 0 {
            sign | 0x7C00
        } else {
            sign | 0x7E00
        };
    }

    let unbiased = exp - 127;
    if unbiased >= 16 {
        return sign | 0x7C00; // Overflow → ∞.
    }
    if unbiased >= -14 {
        // Normal f16 range: drop 13 mantissa bits with RTNE; the carry (if
        // any) propagates into the exponent, including 65504 → ∞.
        let half_exp = (unbiased + 15) as u32;
        let rest = man & 0x1FFF;
        let mut out = (half_exp << 10) | (man >> 13);
        if rest > 0x1000 || (rest == 0x1000 && out & 1 == 1) {
            out += 1;
        }
        return sign | out as u16;
    }
    if exp == 0 {
        return sign; // f32 subnormal: magnitude < 2^-126 ≪ f16 quantum.
    }
    // Subnormal f16: round the 24-bit significand to the 2^-24 quantum.
    let shift = -(unbiased + 1) as u32; // 14..=24 covers all subnormal cases
    if shift > 24 {
        return sign; // Below half the smallest subnormal.
    }
    let sig = 0x80_0000 | man;
    let rest = sig & ((1 << shift) - 1);
    let half = 1 << (shift - 1);
    let mut out = sig >> shift;
    if rest > half || (rest == half && out & 1 == 1) {
        out += 1;
    }
    sign | out as u16
}

fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let man = (h & 0x3FF) as u32;
    let bits = if exp == 0x1F {
        // Infinity / NaN.
        sign | 0x7F80_0000 | (man << 13)
    } else if exp == 0 {
        if man == 0 {
            sign // Signed zero.
        } else {
            // Subnormal: normalize man into an f32 normal.
            let msb = 31 - man.leading_zeros(); // 0..=9
            let f32_exp = 127 - 24 + msb; // value = man × 2^-24
            let mantissa = (man << (23 - msb)) & 0x7F_FFFF;
            sign | (f32_exp << 23) | mantissa
        }
    } else {
        sign | ((exp + 127 - 15) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MiniFormat;

    #[test]
    fn to_f32_matches_miniformat_for_all_16bit_patterns() {
        let fmt = MiniFormat::IEEE_HALF;
        for bits in 0..=u16::MAX {
            let fast = Half::from_bits(bits).to_f32();
            let slow = fmt.dequantize(bits as u32);
            if fast.is_nan() {
                assert!(slow.is_nan(), "bits {bits:#06x}");
            } else {
                assert_eq!(fast, slow, "bits {bits:#06x}");
                assert_eq!(fast.to_bits(), slow.to_bits(), "bits {bits:#06x}");
            }
        }
    }

    #[test]
    fn from_f32_matches_miniformat_on_wide_sweep() {
        let fmt = MiniFormat::IEEE_HALF;
        // Sweep across subnormals, normals, overflow, both signs, and
        // tie-inducing patterns.
        let mut x = 1e-9f32;
        while x < 1e6 {
            for v in [
                x,
                -x,
                x * (1.0 + 2.0f32.powi(-11)),
                x * (1.0 + 3.0 * 2.0f32.powi(-11)),
            ] {
                assert_eq!(
                    Half::from_f32(v).to_bits() as u32,
                    fmt.quantize(v),
                    "for {v}"
                );
            }
            x *= 1.0371;
        }
        for v in [
            0.0f32,
            -0.0,
            f32::INFINITY,
            f32::NEG_INFINITY,
            65504.0,
            65520.0,
            65519.9,
        ] {
            assert_eq!(
                Half::from_f32(v).to_bits() as u32,
                fmt.quantize(v),
                "for {v}"
            );
        }
        assert!(Half::from_f32(f32::NAN).is_nan());
    }

    #[test]
    fn round_trip_of_representable_values_is_identity() {
        for bits in (0..=u16::MAX).step_by(7) {
            let h = Half::from_bits(bits);
            if h.is_nan() {
                continue;
            }
            assert_eq!(Half::from_f32(h.to_f32()), h, "bits {bits:#06x}");
        }
    }

    #[test]
    fn parts_round_trip() {
        for bits in [0x0000u16, 0x3C00, 0xC000, 0x7BFF, 0x03FF, 0x8001] {
            let h = Half::from_bits(bits);
            assert_eq!(Half::from_parts(h.sign_exponent(), h.mantissa()), h);
        }
    }

    #[test]
    fn sign_exponent_layout() {
        // -1.0: sign 1, exponent field 15 → 0b1_01111.
        assert_eq!(Half::from_f32(-1.0).sign_exponent(), 0b10_1111);
        // 2.0: sign 0, exponent field 16.
        assert_eq!(Half::from_f32(2.0).sign_exponent(), 0b01_0000);
    }

    #[test]
    fn special_value_predicates() {
        assert!(Half::from_f32(f32::INFINITY).is_infinite());
        assert!(!Half::from_f32(1.0).is_infinite());
        assert!(Half::from_f32(f32::NAN).is_nan());
        assert!(!Half::ZERO.is_nan());
    }
}
