//! Reduced floating-point formats and rounding-error bounds for K-D Bonsai.
//!
//! The paper (Section III) compresses k-d tree leaf points in two steps:
//!
//! 1. narrow each `f32` coordinate to IEEE-754 binary16 ([`Half`]), chosen
//!    over `bfloat16` and a custom 24-bit format after the accuracy study
//!    reproduced by Table I (see [`ReducedFormat`]);
//! 2. store the 6-bit `<sign, exponent>` of each coordinate once per leaf
//!    when it repeats across all points (value similarity — handled by the
//!    `bonsai-core` codec on top of the field accessors in this crate).
//!
//! Narrowing is lossy, so the paper derives the worst-case rounding error of
//! an `f32 → f16` conversion from the f16 exponent alone (Eq. 6):
//!
//! ```text
//! max(δB) = 2^(exponent − bias) × 2⁻¹¹
//! ```
//!
//! [`max_rounding_error`] implements that bound and [`PartErrorMem`] is the
//! 32-entry lookup table (`part_error_mem` in the paper's Figure 7) the
//! square-of-differences functional unit consults with the f16 exponent
//! field.
//!
//! # Examples
//!
//! ```
//! use bonsai_floatfmt::Half;
//!
//! let h = Half::from_f32(3.15625);
//! let x = h.to_f32();
//! assert!((x - 3.15625).abs() <= bonsai_floatfmt::max_rounding_error(h.exponent_field()));
//! ```

#![forbid(unsafe_code)]

mod bound;
mod fields;
mod formats;
mod half;
mod minifloat;

pub use bound::{max_rounding_error, PartErrorEntry, PartErrorMem};
pub use fields::{f32_exponent_field, f32_mantissa, f32_sign_bit, sign_exponent_key};
pub use formats::ReducedFormat;
pub use half::Half;
pub use minifloat::MiniFormat;
