//! A generic reduced-precision binary floating-point format.
//!
//! [`MiniFormat`] describes any `1 + exp_bits + man_bits` IEEE-754-style
//! format and converts to/from `f32` with round-to-nearest-even — the
//! default IEEE rounding the paper assumes when deriving its error bound
//! (Section III-C). The three formats of Table I are instances:
//! binary16 (5/10), bfloat16 (8/7) and the custom float24 (5/18).

/// Description of a reduced binary floating-point format.
///
/// # Examples
///
/// ```
/// use bonsai_floatfmt::MiniFormat;
///
/// let f16 = MiniFormat::IEEE_HALF;
/// let bits = f16.quantize(1.0005);
/// // 1.0005 is not representable in 10 mantissa bits; the round trip lands
/// // on the nearest representable value.
/// let back = f16.dequantize(bits);
/// assert!((back - 1.0005).abs() < 0.0005);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MiniFormat {
    exp_bits: u32,
    man_bits: u32,
}

impl MiniFormat {
    /// IEEE-754 binary16: 1 sign, 5 exponent, 10 mantissa bits.
    pub const IEEE_HALF: MiniFormat = MiniFormat {
        exp_bits: 5,
        man_bits: 10,
    };

    /// bfloat16: 1 sign, 8 exponent, 7 mantissa bits.
    pub const BFLOAT16: MiniFormat = MiniFormat {
        exp_bits: 8,
        man_bits: 7,
    };

    /// The paper's custom 24-bit format: 1 sign, 5 exponent, 18 mantissa
    /// bits (Table I's "Custom float 24").
    pub const FLOAT24: MiniFormat = MiniFormat {
        exp_bits: 5,
        man_bits: 18,
    };

    /// Creates a format description.
    ///
    /// # Panics
    ///
    /// Panics if `exp_bits` is not in `2..=8` or `man_bits` not in `1..=22`
    /// (the conversion routines assume a format strictly narrower than
    /// `f32` with a non-degenerate exponent).
    pub fn new(exp_bits: u32, man_bits: u32) -> MiniFormat {
        assert!(
            (2..=8).contains(&exp_bits),
            "exp_bits must be in 2..=8, got {exp_bits}"
        );
        assert!(
            (1..=22).contains(&man_bits),
            "man_bits must be in 1..=22, got {man_bits}"
        );
        MiniFormat { exp_bits, man_bits }
    }

    /// Number of exponent bits.
    pub fn exp_bits(self) -> u32 {
        self.exp_bits
    }

    /// Number of mantissa bits.
    pub fn man_bits(self) -> u32 {
        self.man_bits
    }

    /// Total storage width in bits (including the sign).
    pub fn total_bits(self) -> u32 {
        1 + self.exp_bits + self.man_bits
    }

    /// The exponent bias, `2^(exp_bits−1) − 1` (15 for binary16).
    pub fn bias(self) -> i32 {
        (1 << (self.exp_bits - 1)) - 1
    }

    /// The all-ones exponent-field value (infinity/NaN marker).
    pub fn max_exp_field(self) -> u32 {
        (1 << self.exp_bits) - 1
    }

    /// The smallest unbiased exponent of a *normal* number (−14 for
    /// binary16).
    pub fn min_normal_exp(self) -> i32 {
        1 - self.bias()
    }

    /// Converts `x` to this format with round-to-nearest-even, returning
    /// the packed bits in the low `total_bits()` of the result.
    ///
    /// Values whose rounded magnitude exceeds the largest finite value
    /// become infinity, as IEEE-754 prescribes; NaN becomes a canonical
    /// quiet NaN.
    pub fn quantize(self, x: f32) -> u32 {
        let bits = x.to_bits();
        let sign = (bits >> 31) & 1;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let man = bits & 0x7F_FFFF;
        let mb = self.man_bits;
        let packed_sign = sign << (self.exp_bits + mb);

        if exp == 0xFF {
            // Infinity or NaN.
            let payload = if man == 0 { 0 } else { 1 << (mb - 1) };
            return packed_sign | (self.max_exp_field() << mb) | payload;
        }
        if exp == 0 && man == 0 {
            return packed_sign; // Signed zero.
        }

        // Express |x| = sig × 2^(unbiased − 23) with sig normalized into
        // [2^23, 2^24). f32 subnormals are normalized here too.
        let (sig, unbiased): (u32, i32) = if exp == 0 {
            let msb = 31 - man.leading_zeros() as i32;
            let shift = 23 - msb;
            (man << shift, -126 - shift)
        } else {
            (0x80_0000 | man, exp - 127)
        };

        if unbiased >= self.min_normal_exp() {
            // Lands in the target's normal range: keep the top 1+mb bits of
            // the significand and round the dropped 23−mb bits.
            let drop = 23 - mb;
            let q = rtne_shift(sig as u64, drop) as u32;
            // q has the implicit bit at position mb; a carry to 2^(mb+1)
            // propagates into the exponent when packed additively.
            let exp_field = (unbiased + self.bias()) as u32;
            let packed = (exp_field << mb) + (q - (1 << mb));
            if (packed >> mb) >= self.max_exp_field() {
                return packed_sign | (self.max_exp_field() << mb); // Overflow → ∞.
            }
            return packed_sign | packed;
        }

        // Below the normal range: round to a multiple of the subnormal
        // quantum 2^(min_normal_exp − mb).
        let quantum_exp = self.min_normal_exp() - mb as i32;
        let shift = quantum_exp - (unbiased - 23);
        debug_assert!(shift > 0);
        if shift >= 64 {
            return packed_sign; // Far below the smallest subnormal.
        }
        let q = rtne_shift(sig as u64, shift as u32) as u32;
        // q == 2^mb (carry into the smallest normal) packs correctly as
        // exponent field 1, mantissa 0.
        packed_sign | q
    }

    /// Converts packed bits of this format back to `f32`.
    ///
    /// Every finite value of a `MiniFormat` is exactly representable in
    /// `f32`, so this conversion is exact.
    pub fn dequantize(self, packed: u32) -> f32 {
        let mb = self.man_bits;
        let sign = (packed >> (self.exp_bits + mb)) & 1;
        let exp_field = (packed >> mb) & self.max_exp_field();
        let man = packed & ((1 << mb) - 1);
        let magnitude: f64 = if exp_field == self.max_exp_field() {
            if man == 0 {
                f64::INFINITY
            } else {
                f64::NAN
            }
        } else if exp_field == 0 {
            // Subnormal: man × 2^(min_normal_exp − mb).
            man as f64 * (self.min_normal_exp() - mb as i32).exp2_f64()
        } else {
            let unbiased = exp_field as i32 - self.bias();
            let significand = ((1u32 << mb) | man) as f64 * (-(mb as i32)).exp2_f64();
            significand * unbiased.exp2_f64()
        };
        let v = magnitude as f32; // Exact: all mini-float values fit in f32.
        if sign == 1 {
            -v
        } else {
            v
        }
    }

    /// Quantize-then-dequantize: the `f32` value nearest-representable in
    /// this format. This is the "smaller representation" transform whose
    /// classification error Table I measures.
    ///
    /// # Examples
    ///
    /// ```
    /// use bonsai_floatfmt::MiniFormat;
    /// let rounded = MiniFormat::IEEE_HALF.round_trip(8.2031);
    /// assert!((rounded - 8.2031).abs() < 8.0 / 1024.0);
    /// ```
    pub fn round_trip(self, x: f32) -> f32 {
        self.dequantize(self.quantize(x))
    }

    /// The largest finite value of the format.
    pub fn max_finite(self) -> f32 {
        let packed = ((self.max_exp_field() - 1) << self.man_bits) | ((1 << self.man_bits) - 1);
        self.dequantize(packed)
    }
}

/// `v >> shift` with IEEE round-to-nearest, ties-to-even.
fn rtne_shift(v: u64, shift: u32) -> u64 {
    if shift == 0 {
        return v;
    }
    let q = v >> shift;
    let rest = v & ((1u64 << shift) - 1);
    let half = 1u64 << (shift - 1);
    if rest > half || (rest == half && (q & 1) == 1) {
        q + 1
    } else {
        q
    }
}

/// Exact power-of-two helper: `2^self` as `f64`.
trait Exp2I32 {
    fn exp2_f64(self) -> f64;
}

impl Exp2I32 for i32 {
    fn exp2_f64(self) -> f64 {
        // f64 covers 2^±1074 exactly for the exponents used here
        // (|exponent| ≤ 160), so `exp2` of an integer is exact.
        (self as f64).exp2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_exact_values_round_trip_exactly() {
        for x in [0.0f32, -0.0, 1.0, -2.5, 0.5, 1024.0, 65504.0, 6.1035156e-5] {
            assert_eq!(MiniFormat::IEEE_HALF.round_trip(x), x, "for {x}");
        }
    }

    #[test]
    fn half_matches_known_bit_patterns() {
        let f16 = MiniFormat::IEEE_HALF;
        assert_eq!(f16.quantize(1.0), 0x3C00);
        assert_eq!(f16.quantize(-2.0), 0xC000);
        assert_eq!(f16.quantize(65504.0), 0x7BFF);
        assert_eq!(f16.quantize(f32::INFINITY), 0x7C00);
        assert_eq!(f16.quantize(-f32::INFINITY), 0xFC00);
        // Smallest positive subnormal: 2^-24.
        assert_eq!(f16.quantize(5.9604645e-8), 0x0001);
        // Smallest positive normal: 2^-14.
        assert_eq!(f16.quantize(6.1035156e-5), 0x0400);
    }

    #[test]
    fn half_overflow_rounds_to_infinity_at_65520() {
        let f16 = MiniFormat::IEEE_HALF;
        // 65519.996… rounds down to 65504; ≥ 65520 rounds up to ∞.
        assert_eq!(f16.round_trip(65519.0), 65504.0);
        assert_eq!(f16.round_trip(65520.0), f32::INFINITY);
    }

    #[test]
    fn ties_round_to_even() {
        let f16 = MiniFormat::IEEE_HALF;
        // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10;
        // ties-to-even keeps the even mantissa (1.0).
        let tie_even = 1.0 + (2.0f32).powi(-11);
        assert_eq!(f16.round_trip(tie_even), 1.0);
        // (1 + 3·2^-11) is halfway between 1+2^-10 (odd) and 1+2^-9 (even).
        let tie_odd = 1.0 + 3.0 * (2.0f32).powi(-11);
        assert_eq!(f16.round_trip(tie_odd), 1.0 + (2.0f32).powi(-9));
    }

    #[test]
    fn subnormal_rounding_is_to_quantum() {
        let f16 = MiniFormat::IEEE_HALF;
        let quantum = (2.0f32).powi(-24);
        // 2.4 quanta rounds to 2 quanta; 2.6 to 3.
        assert_eq!(f16.round_trip(2.4 * quantum), 2.0 * quantum);
        assert_eq!(f16.round_trip(2.6 * quantum), 3.0 * quantum);
        // Half a quantum is a tie with zero (even): rounds to zero.
        assert_eq!(f16.round_trip(0.5 * quantum), 0.0);
        assert!(f16.round_trip(0.51 * quantum) > 0.0);
    }

    #[test]
    fn nan_propagates() {
        for fmt in [
            MiniFormat::IEEE_HALF,
            MiniFormat::BFLOAT16,
            MiniFormat::FLOAT24,
        ] {
            assert!(fmt.round_trip(f32::NAN).is_nan());
        }
    }

    #[test]
    fn bfloat_is_f32_truncation_with_rounding() {
        let bf = MiniFormat::BFLOAT16;
        // bfloat16 of x keeps the top 16 bits of the f32 pattern (+RTNE).
        let x = 3.17459f32;
        let got = bf.round_trip(x);
        let expect_bits = {
            let b = x.to_bits();
            let rest = b & 0xFFFF;
            let mut hi = b >> 16;
            if rest > 0x8000 || (rest == 0x8000 && hi & 1 == 1) {
                hi += 1;
            }
            hi << 16
        };
        assert_eq!(got.to_bits(), expect_bits);
    }

    #[test]
    fn bfloat_preserves_f32_subnormals_to_its_precision() {
        let bf = MiniFormat::BFLOAT16;
        let x = f32::MIN_POSITIVE / 2.0; // f32 subnormal
        let rt = bf.round_trip(x);
        assert_eq!(rt, x); // top bits of a power of two survive exactly
    }

    #[test]
    fn float24_is_more_precise_than_half() {
        let x = 100.0303f32;
        let err24 = (MiniFormat::FLOAT24.round_trip(x) - x).abs();
        let err16 = (MiniFormat::IEEE_HALF.round_trip(x) - x).abs();
        assert!(err24 < err16 / 100.0, "err24={err24}, err16={err16}");
    }

    #[test]
    fn max_finite_values() {
        assert_eq!(MiniFormat::IEEE_HALF.max_finite(), 65504.0);
        // bfloat16 max ≈ 3.39e38.
        assert!(MiniFormat::BFLOAT16.max_finite() > 3.3e38);
    }

    #[test]
    #[should_panic(expected = "man_bits")]
    fn rejects_f32_width() {
        MiniFormat::new(8, 23);
    }

    #[test]
    fn rounding_error_never_exceeds_half_ulp() {
        // Brute check against a dense value sweep for all three formats.
        for fmt in [
            MiniFormat::IEEE_HALF,
            MiniFormat::BFLOAT16,
            MiniFormat::FLOAT24,
        ] {
            let mut x = 1e-6f32;
            while x < 1000.0 {
                for v in [x, -x] {
                    let rt = fmt.round_trip(v);
                    let exact = v as f64;
                    let err = (rt as f64 - exact).abs();
                    // ULP at |v| in the target format (normal range).
                    let exp = exact.abs().log2().floor() as i32;
                    let ulp = (2.0f64).powi(exp.max(fmt.min_normal_exp()) - fmt.man_bits() as i32);
                    assert!(
                        err <= ulp / 2.0 + 1e-30,
                        "fmt={fmt:?} v={v} err={err} ulp={ulp}"
                    );
                }
                x *= 1.7;
            }
        }
    }
}
