//! IEEE-754 binary32 bit-field accessors.
//!
//! The value-similarity analysis of the paper (Section III-A, Figure 3)
//! inspects the sign and exponent fields of the `f32` coordinates held by a
//! k-d tree leaf; when the 9-bit `<sign, exponent>` pair repeats across all
//! points of the leaf for a coordinate, it is a compression opportunity.

/// The sign bit of an `f32` (0 for non-negative, 1 for negative).
///
/// # Examples
///
/// ```
/// use bonsai_floatfmt::f32_sign_bit;
/// assert_eq!(f32_sign_bit(1.5), 0);
/// assert_eq!(f32_sign_bit(-0.0), 1);
/// ```
pub fn f32_sign_bit(x: f32) -> u32 {
    x.to_bits() >> 31
}

/// The 8-bit biased exponent field of an `f32`.
///
/// # Examples
///
/// ```
/// use bonsai_floatfmt::f32_exponent_field;
/// // 8.2 is in [8, 16) = [2³, 2⁴), so its biased exponent is 127 + 3 = 130
/// // (the paper's Figure 3b example).
/// assert_eq!(f32_exponent_field(8.2), 130);
/// ```
pub fn f32_exponent_field(x: f32) -> u32 {
    (x.to_bits() >> 23) & 0xFF
}

/// The 23-bit mantissa (fraction) field of an `f32`.
pub fn f32_mantissa(x: f32) -> u32 {
    x.to_bits() & 0x7F_FFFF
}

/// The 9-bit `<sign, exponent>` key of an `f32` — the unit of value
/// similarity the paper merges across a leaf (Section III-A).
///
/// Two floats share this key exactly when they have the same sign and lie
/// within the same power-of-two magnitude bucket.
///
/// # Examples
///
/// ```
/// use bonsai_floatfmt::sign_exponent_key;
/// // All of [8, 16) share one key; the bucket boundary at 16 changes it.
/// assert_eq!(sign_exponent_key(8.2), sign_exponent_key(15.9));
/// assert_ne!(sign_exponent_key(15.9), sign_exponent_key(16.1));
/// assert_ne!(sign_exponent_key(8.2), sign_exponent_key(-8.2));
/// ```
pub fn sign_exponent_key(x: f32) -> u16 {
    (x.to_bits() >> 23) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fields_reassemble_to_original_bits() {
        for x in [0.0f32, -1.5, 8.2, -120.0, 1e-20, f32::MAX] {
            let bits = (f32_sign_bit(x) << 31) | (f32_exponent_field(x) << 23) | f32_mantissa(x);
            assert_eq!(bits, x.to_bits(), "for {x}");
        }
    }

    #[test]
    fn paper_figure3_exponents() {
        // Figure 3b: x coordinates 8.2 .. 14.7 all have exponent field 130.
        for x in [8.2f32, 9.7, 12.4, 12.9, 14.7] {
            assert_eq!(f32_exponent_field(x), 130);
            assert_eq!(f32_sign_bit(x), 0);
        }
        // y coordinates -4.8 .. -2.5 span exponent fields 128..130 (Fig. 3b
        // shows 129 and 128 among them), so y does not compress there.
        assert_eq!(f32_sign_bit(-4.8), 1);
        assert_eq!(f32_exponent_field(-4.8), 129);
        assert_eq!(f32_exponent_field(-2.5), 128);
    }

    #[test]
    fn key_distinguishes_sign_and_bucket() {
        assert_eq!(sign_exponent_key(2.0), sign_exponent_key(3.9));
        assert_ne!(sign_exponent_key(2.0), sign_exponent_key(4.0));
        assert_ne!(sign_exponent_key(2.0), sign_exponent_key(-2.0));
        // Zero and the smallest subnormals share the 0-exponent bucket.
        assert_eq!(
            sign_exponent_key(0.0),
            sign_exponent_key(f32::MIN_POSITIVE / 4.0)
        );
    }
}
