//! Property tests for the reduced floating-point formats: round-trip
//! idempotence, the Eq. 6 error bound, and ordering preservation.

use bonsai_floatfmt::{max_rounding_error, Half, MiniFormat, PartErrorMem, ReducedFormat};
use proptest::prelude::*;

/// LiDAR-plausible coordinate values (the paper's operating range).
fn lidar_coord() -> impl Strategy<Value = f32> {
    prop_oneof![
        (-120.0f32..120.0),
        (-1.0f32..1.0),     // near-origin (z-like) values
        (-0.001f32..0.001), // subnormal-f16 territory
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Quantization is idempotent: re-quantizing a representable value
    /// changes nothing.
    #[test]
    fn quantize_is_idempotent(x in lidar_coord()) {
        for fmt in [MiniFormat::IEEE_HALF, MiniFormat::BFLOAT16, MiniFormat::FLOAT24] {
            let once = fmt.round_trip(x);
            let twice = fmt.round_trip(once);
            prop_assert_eq!(once.to_bits(), twice.to_bits());
        }
    }

    /// The fast `Half` bit path agrees with the generic `MiniFormat`
    /// implementation on arbitrary values.
    #[test]
    fn half_matches_generic(x in any::<f32>()) {
        let fast = Half::from_f32(x);
        let slow = MiniFormat::IEEE_HALF.quantize(x) as u16;
        prop_assert_eq!(fast.to_bits(), slow);
    }

    /// Eq. 6: the rounding error never exceeds the bound derived from
    /// the *converted* value's exponent field.
    #[test]
    fn rounding_error_obeys_eq6(x in lidar_coord()) {
        let h = Half::from_f32(x);
        let err = (h.to_f32() as f64 - x as f64).abs();
        let bound = max_rounding_error(h.exponent_field()) as f64;
        prop_assert!(err <= bound, "x={x} err={err} bound={bound}");
    }

    /// Eq. 9: the squared-difference error bound holds for arbitrary
    /// query/point coordinate pairs.
    #[test]
    fn squared_difference_error_obeys_eq9(a in lidar_coord(), b in lidar_coord()) {
        let lut = PartErrorMem::new();
        let h = Half::from_f32(b);
        let b16 = h.to_f32();
        let true_sq = (a as f64 - b as f64).powi(2);
        let approx_sq = (a as f64 - b16 as f64).powi(2);
        let entry = lut.lookup(h.exponent_field());
        let bound = entry.two_max_delta as f64 * (a as f64 - b16 as f64).abs()
            + entry.max_delta_sq as f64;
        prop_assert!((true_sq - approx_sq).abs() <= bound);
    }

    /// Quantization preserves (non-strict) ordering.
    #[test]
    fn quantization_is_monotone(a in lidar_coord(), b in lidar_coord()) {
        for fmt in ReducedFormat::ALL {
            if a <= b {
                prop_assert!(fmt.quantize_value(a) <= fmt.quantize_value(b));
            }
        }
    }

    /// Sign/exponent sharing: two values of the same sign and power-of-
    /// two bucket map to the same f16 `<sign, exp>` tuple unless rounding
    /// carried into the next exponent.
    #[test]
    fn nearby_values_often_share_sign_exp(x in 1.0f32..100.0) {
        let a = Half::from_f32(x);
        let b = Half::from_f32(x * 1.0001);
        // Either identical tuples, or exponents one apart (carry).
        let ea = a.sign_exponent() & 0x1F;
        let eb = b.sign_exponent() & 0x1F;
        prop_assert!(ea == eb || eb == ea + 1);
    }
}
