//! Normal-Distributions-Transform (NDT) scan matching.
//!
//! The paper's Figure 2 shows radius search consuming 51 % of
//! Autoware.ai's `ndt_matching` localization task. This crate implements
//! that workload: the map is voxelized into Gaussian cells ([`NdtMap`],
//! Biber 2003 / Magnusson 2009), and scan alignment ([`NdtMatcher`])
//! iterates Newton steps whose per-point neighbourhood gathering is a
//! **k-d tree radius search** over the cell centroids (the `KDTREE`
//! neighbour mode of Autoware's pclomp NDT) — which is exactly where
//! K-D Bonsai applies.
//!
//! Deviations from PCL's implementation, both standard and
//! convergence-equivalent:
//!
//! * the pose increment is linearized as a left-multiplied small
//!   rotation (`x′ = ΔR·(R p) + t + δt`, Jacobian `[I | −[Rp]×]`)
//!   instead of Euler-angle derivatives;
//! * the Hessian uses the Gauss–Newton approximation (second-order term
//!   dropped) with Levenberg damping.
//!
//! # Examples
//!
//! ```
//! use bonsai_geom::{Point3, Pose};
//! use bonsai_ndt::{NdtConfig, NdtMap, NdtMatcher, NdtSearchMode};
//! use bonsai_sim::SimEngine;
//!
//! // A map with structure along every axis.
//! let mut map = Vec::new();
//! for i in 0..60 {
//!     for j in 0..8 {
//!         map.push(Point3::new(i as f32, j as f32 * 0.3, (i % 7) as f32 * 0.1));
//!         map.push(Point3::new(i as f32, 20.0 - j as f32 * 0.3, 2.0));
//!     }
//! }
//! let mut sim = SimEngine::disabled();
//! let ndt_map = NdtMap::build(&mut sim, &map, 2.0);
//! let mut matcher = NdtMatcher::new(&mut sim, ndt_map, NdtConfig::default(),
//!                                   NdtSearchMode::Baseline);
//! // Align the map against itself from a perturbed guess.
//! let guess = Pose::from_translation_euler(Point3::new(0.3, -0.2, 0.0), 0.0, 0.0, 0.01);
//! let result = matcher.align(&mut sim, &map, &guess);
//! assert!(result.translation_error(&Pose::identity()) < 0.1);
//! ```

#![forbid(unsafe_code)]

mod map;
mod matcher;

pub use map::{NdtCell, NdtMap};
pub use matcher::{AlignResult, NdtConfig, NdtMatcher, NdtSearchMode};
