use bonsai_core::BonsaiTree;
use bonsai_geom::{Mat3, Mat6, Point3, Pose, Vec6};
use bonsai_isa::Machine;
use bonsai_kdtree::{
    BaselineLeafProcessor, KdTree, KdTreeConfig, Neighbor, SearchScratch, SearchStats,
};
use bonsai_sim::{Kernel, OpClass, SimEngine};

use crate::map::{NdtMap, CELL_STRIDE};

/// Which leaf path the matcher's radius searches use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NdtSearchMode {
    /// Uncompressed `f32` leaves.
    #[default]
    Baseline,
    /// Bonsai-compressed leaves.
    Bonsai,
}

/// Matcher parameters (defaults follow Autoware's `ndt_matching`).
#[derive(Debug, Clone, PartialEq)]
pub struct NdtConfig {
    /// Newton iterations cap.
    pub max_iterations: u32,
    /// Convergence threshold on the update norm.
    pub epsilon: f64,
    /// Magnusson's outlier ratio (mixes a uniform distribution into the
    /// per-cell Gaussians).
    pub outlier_ratio: f64,
    /// Levenberg damping added to the Hessian diagonal.
    pub damping: f64,
    /// Maximum Newton step norm per iteration (PCL's `step_size`
    /// safeguard, in meters/radians of the 6-vector).
    pub max_step: f64,
    /// Use every `stride`-th scan point (Autoware downsamples scans
    /// before matching).
    pub scan_stride: usize,
}

impl Default for NdtConfig {
    fn default() -> NdtConfig {
        NdtConfig {
            max_iterations: 30,
            epsilon: 1e-4,
            outlier_ratio: 0.55,
            damping: 1e-3,
            max_step: 0.1,
            scan_stride: 1,
        }
    }
}

/// The outcome of one alignment.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignResult {
    /// The estimated map-from-vehicle pose.
    pub pose: Pose,
    /// Newton iterations executed.
    pub iterations: u32,
    /// Final NDT score (more negative = better fit).
    pub score: f64,
    /// Whether the update norm fell below epsilon.
    pub converged: bool,
    /// Radius-search work counters.
    pub search_stats: SearchStats,
}

impl AlignResult {
    /// Translation distance between the estimate and a reference pose.
    pub fn translation_error(&self, reference: &Pose) -> f32 {
        self.pose.translation.distance(reference.translation)
    }
}

/// NDT scan-to-map matching with k-d-tree neighbour gathering.
///
/// See the [crate docs](crate) for the algorithm notes and an example.
#[derive(Debug)]
pub struct NdtMatcher {
    map: NdtMap,
    cfg: NdtConfig,
    mode: NdtSearchMode,
    baseline_tree: Option<KdTree>,
    bonsai_tree: Option<BonsaiTree>,
    machine: Machine,
    d1: f64,
    d2: f64,
}

impl NdtMatcher {
    /// Builds the matcher: fits the centroid k-d tree in the requested
    /// mode and precomputes Magnusson's mixture constants.
    pub fn new(
        sim: &mut SimEngine,
        map: NdtMap,
        cfg: NdtConfig,
        mode: NdtSearchMode,
    ) -> NdtMatcher {
        let centroids = map.centroids();
        let (baseline_tree, bonsai_tree) = match mode {
            NdtSearchMode::Baseline => (
                Some(KdTree::build(centroids, KdTreeConfig::default(), sim)),
                None,
            ),
            NdtSearchMode::Bonsai => (
                None,
                Some(BonsaiTree::build(centroids, KdTreeConfig::default(), sim)),
            ),
        };
        // Magnusson 2009, Eq. 6.8: Gaussian + uniform mixture constants.
        // PCL's `gauss_d1_` is negative (it maximizes score); we minimize
        // `f = Σ −d1·exp(−d2/2·qᵀBq)` with the positive magnitude.
        let c = map.resolution() as f64;
        let gauss_c1 = 10.0 * (1.0 - cfg.outlier_ratio);
        let gauss_c2 = cfg.outlier_ratio / (c * c * c);
        let gauss_d3 = -(gauss_c2).ln();
        let d1_pcl = -((gauss_c1 + gauss_c2).ln()) - gauss_d3;
        let d2 = -2.0 * ((-(gauss_c1 * (-0.5f64).exp() + gauss_c2).ln() - gauss_d3) / d1_pcl).ln();
        let d1 = -d1_pcl;
        NdtMatcher {
            map,
            cfg,
            mode,
            baseline_tree,
            bonsai_tree,
            machine: Machine::new(),
            d1,
            d2,
        }
    }

    /// The map.
    pub fn map(&self) -> &NdtMap {
        &self.map
    }

    /// Aligns `scan` (vehicle frame) to the map starting from `guess`,
    /// returning the refined pose.
    pub fn align(&mut self, sim: &mut SimEngine, scan: &[Point3], guess: &Pose) -> AlignResult {
        let mut pose = *guess;
        let mut stats = SearchStats::default();
        let mut neighbors: Vec<Neighbor> = Vec::new();
        let mut scratch = SearchScratch::new();
        let mut iterations = 0;
        let mut converged = false;
        let mut score = 0.0;
        let radius = self.map.resolution();
        let scan_addr = sim.alloc(scan.len() as u64 * 16, 64);
        // One processor per alignment (stateful scratch; per-query
        // construction would poison the cache model with cold regions).
        let mut baseline_proc = self
            .baseline_tree
            .as_ref()
            .map(|_| BaselineLeafProcessor::new(sim));
        let mut bonsai_proc = self
            .bonsai_tree
            .as_ref()
            .map(|b| bonsai_core::BonsaiLeafProcessor::new(b.directory(), &mut self.machine));

        for _ in 0..self.cfg.max_iterations {
            iterations += 1;
            let mut gradient = Vec6::ZERO;
            let mut hessian = Mat6::ZERO;
            score = 0.0;

            for (i, p) in scan.iter().enumerate().step_by(self.cfg.scan_stride.max(1)) {
                // Transform the point with the current estimate.
                sim.set_kernel(Kernel::NdtMath);
                sim.load(scan_addr + i as u64 * 16, 12);
                sim.exec(OpClass::FpAlu, 18);
                let rotated = pose.rotation.mul_point(*p);
                let x = rotated + pose.translation;

                // Neighbour gathering: the radius search of Figure 2.
                match self.mode {
                    NdtSearchMode::Baseline => {
                        let tree = self.baseline_tree.as_ref().expect("baseline tree");
                        let proc = baseline_proc.as_mut().expect("baseline processor");
                        tree.radius_search_scratch(
                            sim,
                            proc,
                            x,
                            radius,
                            &mut neighbors,
                            &mut stats,
                            &mut scratch,
                        );
                    }
                    NdtSearchMode::Bonsai => {
                        let tree = self.bonsai_tree.as_ref().expect("bonsai tree").kd_tree();
                        let proc = bonsai_proc.as_mut().expect("bonsai processor");
                        tree.radius_search_scratch(
                            sim,
                            proc,
                            x,
                            radius,
                            &mut neighbors,
                            &mut stats,
                            &mut scratch,
                        );
                    }
                }

                sim.set_kernel(Kernel::NdtMath);
                for nb in &neighbors {
                    let cell = &self.map.cells()[nb.index as usize];
                    sim.load(self.map.cell_addr(nb.index), CELL_STRIDE as u32);
                    sim.exec(OpClass::FpAlu, 90); // q, Bq, score, J products

                    let q = [
                        (x.x - cell.mean.x) as f64,
                        (x.y - cell.mean.y) as f64,
                        (x.z - cell.mean.z) as f64,
                    ];
                    let b: &Mat3 = &cell.inv_cov;
                    let bq = b.mul_vec(q);
                    let u = q[0] * bq[0] + q[1] * bq[1] + q[2] * bq[2];
                    let e = (-0.5 * self.d2 * u).exp();
                    score -= self.d1 * e;
                    let w = self.d1 * self.d2 * e;

                    // Jacobian columns: translation = I, rotation = −[v]×
                    // with v = R·p.
                    let v = [rotated.x as f64, rotated.y as f64, rotated.z as f64];
                    let mut jt_bq = [0.0f64; 6]; // (Jᵀ B q)
                    jt_bq[0] = bq[0];
                    jt_bq[1] = bq[1];
                    jt_bq[2] = bq[2];
                    // (−[v]×)ᵀ B q = (v × Bq) … column k of −[v]× is e_k×v.
                    jt_bq[3] = v[1] * bq[2] - v[2] * bq[1];
                    jt_bq[4] = v[2] * bq[0] - v[0] * bq[2];
                    jt_bq[5] = v[0] * bq[1] - v[1] * bq[0];

                    for r in 0..6 {
                        gradient[r] += w * jt_bq[r];
                    }
                    // Positive-semidefinite Gauss–Newton Hessian
                    // `Σ w·JᵀBJ`. The exact Newton Hessian subtracts
                    // `d2·(JᵀBq)(JᵀBq)ᵀ`, which is indefinite away from
                    // the optimum; PCL compensates with a More–Thuente
                    // line search, we keep the PSD form instead
                    // (documented deviation, same fixed point).
                    let jbj = jt_b_j(b, v);
                    for r in 0..6 {
                        for cc in 0..6 {
                            hessian[(r, cc)] += w * jbj[r][cc];
                        }
                    }
                }
            }

            sim.set_kernel(Kernel::NdtMath);
            sim.exec(OpClass::FpAlu, 300); // 6×6 solve
            hessian.add_diagonal(self.cfg.damping + 1e-9);
            let Some(mut delta) = hessian.solve(gradient * -1.0) else {
                break;
            };
            // Step safeguard (PCL clamps the Newton step the same way).
            let norm = delta.norm();
            if norm > self.cfg.max_step {
                delta = delta * (self.cfg.max_step / norm);
            }
            // Apply: t += δt; R = ΔR(δω)·R.
            let delta_rot = Mat3::from_euler(delta[3], delta[4], delta[5]);
            let new_rot = delta_rot * pose.rotation;
            let new_t =
                pose.translation + Point3::new(delta[0] as f32, delta[1] as f32, delta[2] as f32);
            pose = pose_from_parts(new_rot, new_t);
            if delta.norm() < self.cfg.epsilon {
                converged = true;
                break;
            }
        }
        sim.set_kernel(Kernel::Other);
        AlignResult {
            pose,
            iterations,
            score,
            converged,
            search_stats: stats,
        }
    }
}

/// `Jᵀ B J` for `J = [I | −[v]×]`, returned as a dense 6×6.
fn jt_b_j(b: &Mat3, v: [f64; 3]) -> [[f64; 6]; 6] {
    // Columns of J: c0..c2 = e0..e2, c3..c5 = e_k × v.
    let cols: [[f64; 3]; 6] = [
        [1.0, 0.0, 0.0],
        [0.0, 1.0, 0.0],
        [0.0, 0.0, 1.0],
        [0.0, -v[2], v[1]], // e0 × v
        [v[2], 0.0, -v[0]], // e1 × v
        [-v[1], v[0], 0.0], // e2 × v
    ];
    let mut out = [[0.0f64; 6]; 6];
    for r in 0..6 {
        let b_cr = b.mul_vec(cols[r]);
        for c in 0..6 {
            out[r][c] = cols[c][0] * b_cr[0] + cols[c][1] * b_cr[1] + cols[c][2] * b_cr[2];
        }
    }
    out
}

/// Builds a pose from rotation matrix + translation (recovering Euler
/// angles for reporting).
fn pose_from_parts(rotation: Mat3, translation: Point3) -> Pose {
    // Pose stores Euler angles alongside the matrix; recover them.
    let pitch = (-rotation[(2, 0)]).asin();
    let roll = rotation[(2, 1)].atan2(rotation[(2, 2)]);
    let yaw = rotation[(1, 0)].atan2(rotation[(0, 0)]);
    let mut pose = Pose::from_translation_euler(translation, roll, pitch, yaw);
    // Keep the exact matrix (from_euler re-derives an equivalent one, but
    // exactness helps iteration-to-iteration stability).
    pose.rotation = rotation;
    pose
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A structured scene: floor, side walls and cross walls — enough
    /// constraint in all six degrees of freedom (a corridor without the
    /// cross walls leaves x observable only through its ends: the
    /// aperture problem, under which any NDT converges slowly).
    fn structured_cloud() -> Vec<Point3> {
        let mut pts = Vec::new();
        for i in 0..80 {
            for j in 0..10 {
                let x = i as f32 * 0.4;
                pts.push(Point3::new(x, j as f32 * 0.35, 0.0)); // floor
                pts.push(Point3::new(x, 0.0, j as f32 * 0.3)); // left wall
                pts.push(Point3::new(x, 12.0, j as f32 * 0.3)); // right wall
            }
        }
        // Cross walls every 8 m give x-translation a strong gradient.
        for k in 0..5 {
            let x = k as f32 * 8.0;
            for j in 0..24 {
                for h in 0..8 {
                    pts.push(Point3::new(x, j as f32 * 0.5, h as f32 * 0.3));
                }
            }
        }
        pts
    }

    fn align_from(guess: Pose, mode: NdtSearchMode) -> AlignResult {
        let cloud = structured_cloud();
        let mut sim = SimEngine::disabled();
        let map = NdtMap::build(&mut sim, &cloud, 2.0);
        let mut matcher = NdtMatcher::new(&mut sim, map, NdtConfig::default(), mode);
        matcher.align(&mut sim, &cloud, &guess)
    }

    #[test]
    fn identity_guess_stays_put() {
        let r = align_from(Pose::identity(), NdtSearchMode::Baseline);
        assert!(
            r.translation_error(&Pose::identity()) < 0.05,
            "drift {}",
            r.translation_error(&Pose::identity())
        );
    }

    #[test]
    fn recovers_small_perturbations() {
        let guess = Pose::from_translation_euler(Point3::new(0.4, -0.3, 0.1), 0.0, 0.0, 0.02);
        let r = align_from(guess, NdtSearchMode::Baseline);
        assert!(
            r.converged,
            "did not converge in {} iterations",
            r.iterations
        );
        assert!(
            r.translation_error(&Pose::identity()) < 0.1,
            "residual {}",
            r.translation_error(&Pose::identity())
        );
    }

    #[test]
    fn bonsai_mode_matches_baseline_alignment() {
        let guess = Pose::from_translation_euler(Point3::new(0.3, 0.2, 0.0), 0.0, 0.0, -0.015);
        let a = align_from(guess, NdtSearchMode::Baseline);
        let b = align_from(guess, NdtSearchMode::Bonsai);
        // Identical membership in every radius search ⇒ identical Newton
        // trajectory ⇒ identical pose.
        assert!(a.pose.translation.distance(b.pose.translation) < 1e-5);
        assert_eq!(a.iterations, b.iterations);
    }

    #[test]
    fn alignment_performs_radius_searches() {
        let r = align_from(Pose::identity(), NdtSearchMode::Baseline);
        assert!(r.search_stats.points_inspected > 100);
        assert!(r.search_stats.leaf_visits > 10);
    }

    #[test]
    fn score_improves_with_alignment_quality() {
        let good = align_from(Pose::identity(), NdtSearchMode::Baseline);
        let cloud = structured_cloud();
        let mut sim = SimEngine::disabled();
        let map = NdtMap::build(&mut sim, &cloud, 2.0);
        let mut matcher = NdtMatcher::new(
            &mut sim,
            map,
            NdtConfig {
                max_iterations: 1,
                ..NdtConfig::default()
            },
            NdtSearchMode::Baseline,
        );
        let far_guess = Pose::from_translation_euler(Point3::new(3.0, 2.0, 0.5), 0.1, 0.1, 0.4);
        let bad = matcher.align(&mut sim, &cloud, &far_guess);
        assert!(
            good.score < bad.score,
            "good {} vs bad {}",
            good.score,
            bad.score
        );
    }
}
