use std::collections::HashMap;

use bonsai_geom::{Mat3, Point3};
use bonsai_sim::{Kernel, OpClass, SimEngine};

/// One NDT voxel: the Gaussian fitted to the map points inside a cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NdtCell {
    /// Mean of the cell's points.
    pub mean: Point3,
    /// Inverse covariance (the information matrix), regularized.
    pub inv_cov: Mat3,
    /// Number of points the Gaussian was fitted to.
    pub count: u32,
}

/// The voxelized NDT map: Gaussian cells over a world-frame point cloud.
///
/// Cell centroids form a small point cloud of their own; the matcher
/// builds a k-d tree over it and radius-searches it once per scan point
/// per Newton iteration.
#[derive(Debug, Clone)]
pub struct NdtMap {
    cells: Vec<NdtCell>,
    resolution: f32,
    /// Simulated base address of the cell array (mean + inv_cov + count
    /// ≈ 88 bytes per cell).
    cells_addr: u64,
}

/// Simulated bytes per stored cell.
pub(crate) const CELL_STRIDE: u64 = 88;

/// Minimum points for a well-conditioned Gaussian (PCL uses 6).
const MIN_POINTS_PER_CELL: u32 = 6;

impl NdtMap {
    /// Voxelizes `map_cloud` at `resolution` and fits per-cell Gaussians.
    ///
    /// Work is charged to the `Build` kernel (map building is offline in
    /// Autoware, but the charge keeps accounting complete).
    ///
    /// # Panics
    ///
    /// Panics if `resolution` is not positive.
    pub fn build(sim: &mut SimEngine, map_cloud: &[Point3], resolution: f32) -> NdtMap {
        assert!(resolution > 0.0, "resolution must be positive");
        let prev = sim.set_kernel(Kernel::Build);
        let src = sim.alloc(map_cloud.len() as u64 * 16, 64);
        let inv = 1.0 / resolution;

        // First pass: accumulate per-cell sums in f64.
        struct Acc {
            sum: [f64; 3],
            outer: [[f64; 3]; 3],
            n: u32,
        }
        let mut cells: HashMap<(i32, i32, i32), Acc> = HashMap::new();
        for (i, p) in map_cloud.iter().enumerate() {
            sim.load(src + i as u64 * 16, 12);
            sim.exec(OpClass::FpAlu, 12);
            sim.exec(OpClass::IntAlu, 8);
            let key = (
                (p.x * inv).floor() as i32,
                (p.y * inv).floor() as i32,
                (p.z * inv).floor() as i32,
            );
            let acc = cells.entry(key).or_insert(Acc {
                sum: [0.0; 3],
                outer: [[0.0; 3]; 3],
                n: 0,
            });
            let v = [p.x as f64, p.y as f64, p.z as f64];
            for r in 0..3 {
                acc.sum[r] += v[r];
                for c in 0..3 {
                    acc.outer[r][c] += v[r] * v[c];
                }
            }
            acc.n += 1;
        }

        // Second pass: finalize Gaussians for well-populated cells.
        let mut out: Vec<NdtCell> = Vec::new();
        let mut keys: Vec<(i32, i32, i32)> = cells.keys().copied().collect();
        keys.sort_unstable(); // deterministic cell order
        for key in keys {
            let acc = &cells[&key];
            if acc.n < MIN_POINTS_PER_CELL {
                continue;
            }
            sim.exec(OpClass::FpAlu, 60); // covariance + inversion
            let n = acc.n as f64;
            let mean = [acc.sum[0] / n, acc.sum[1] / n, acc.sum[2] / n];
            let mut cov = Mat3::ZERO;
            for r in 0..3 {
                for c in 0..3 {
                    cov[(r, c)] = (acc.outer[r][c] - n * mean[r] * mean[c]) / (n - 1.0);
                }
            }
            // Regularize: surfaces produce near-singular covariances.
            // Like PCL (`min_covar_eigvalue_mult_`), inflate the small
            // directions relative to the largest variance so the
            // information matrix stays bounded and the score surface
            // keeps a usable basin around each cell.
            let max_var = cov[(0, 0)].max(cov[(1, 1)]).max(cov[(2, 2)]);
            let floor = (0.05 * max_var).max((resolution as f64 * 0.01).powi(2));
            for d in 0..3 {
                cov[(d, d)] += floor;
            }
            let Some(inv_cov) = cov.inverse() else {
                continue;
            };
            out.push(NdtCell {
                mean: Point3::new(mean[0] as f32, mean[1] as f32, mean[2] as f32),
                inv_cov,
                count: acc.n,
            });
        }
        let cells_addr = sim.alloc(out.len() as u64 * CELL_STRIDE, 64);
        sim.set_kernel(prev);
        NdtMap {
            cells: out,
            resolution,
            cells_addr,
        }
    }

    /// The fitted cells (index-aligned with the centroid cloud).
    pub fn cells(&self) -> &[NdtCell] {
        &self.cells
    }

    /// The voxel resolution.
    pub fn resolution(&self) -> f32 {
        self.resolution
    }

    /// The cell centroids as a point cloud (what the matcher's k-d tree
    /// indexes).
    pub fn centroids(&self) -> Vec<Point3> {
        self.cells.iter().map(|c| c.mean).collect()
    }

    /// Simulated address of cell `i`'s record.
    pub fn cell_addr(&self, i: u32) -> u64 {
        self.cells_addr + i as u64 * CELL_STRIDE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plane_cloud() -> Vec<Point3> {
        let mut pts = Vec::new();
        for i in 0..30 {
            for j in 0..30 {
                pts.push(Point3::new(
                    i as f32 * 0.2,
                    j as f32 * 0.2,
                    0.01 * (i % 3) as f32,
                ));
            }
        }
        pts
    }

    #[test]
    fn cells_cover_the_cloud() {
        let mut sim = SimEngine::disabled();
        let map = NdtMap::build(&mut sim, &plane_cloud(), 1.0);
        // A 6×6 m plane at 1 m resolution: ~36 populated cells.
        assert!(
            map.cells().len() >= 25 && map.cells().len() <= 49,
            "{}",
            map.cells().len()
        );
        for c in map.cells() {
            assert!(c.count >= 6);
            assert!(c.mean.is_finite());
        }
    }

    #[test]
    fn sparse_cells_are_dropped() {
        let mut sim = SimEngine::disabled();
        let mut pts = plane_cloud();
        pts.push(Point3::new(100.0, 100.0, 100.0)); // a lone point
        let map = NdtMap::build(&mut sim, &pts, 1.0);
        assert!(map.cells().iter().all(|c| c.mean.x < 50.0));
    }

    #[test]
    fn inverse_covariance_is_finite_on_degenerate_surfaces() {
        // A perfectly planar cell would have a singular covariance
        // without regularization.
        let mut pts = Vec::new();
        for i in 0..20 {
            for j in 0..20 {
                pts.push(Point3::new(i as f32 * 0.04, j as f32 * 0.04, 0.0));
            }
        }
        let mut sim = SimEngine::disabled();
        let map = NdtMap::build(&mut sim, &pts, 1.0);
        assert_eq!(map.cells().len(), 1);
        let ic = map.cells()[0].inv_cov;
        for r in 0..3 {
            for c in 0..3 {
                assert!(ic[(r, c)].is_finite());
            }
        }
    }

    #[test]
    fn centroid_cloud_matches_cells() {
        let mut sim = SimEngine::disabled();
        let map = NdtMap::build(&mut sim, &plane_cloud(), 1.0);
        let centroids = map.centroids();
        assert_eq!(centroids.len(), map.cells().len());
        assert_eq!(centroids[0], map.cells()[0].mean);
    }

    #[test]
    #[should_panic(expected = "resolution")]
    fn zero_resolution_rejected() {
        let mut sim = SimEngine::disabled();
        NdtMap::build(&mut sim, &plane_cloud(), 0.0);
    }
}
