//! Property tests for the Figure 6 codec and the instruction-level
//! compress/decompress path: lossless round trips on arbitrary leaves.

use bonsai_isa::{codec, Machine, MAX_POINTS};
use bonsai_sim::SimEngine;
use proptest::prelude::*;

/// An arbitrary leaf: 1..=16 points of arbitrary f16 bit patterns.
fn arb_leaf() -> impl Strategy<Value = Vec<[u16; 3]>> {
    prop::collection::vec(prop::array::uniform3(any::<u16>()), 1..=MAX_POINTS)
}

/// A *similar* leaf: points sharing sign/exponent on all coordinates
/// (exercises the all-compressed layout).
fn similar_leaf() -> impl Strategy<Value = Vec<[u16; 3]>> {
    (
        any::<[u8; 3]>(),
        prop::collection::vec(prop::array::uniform3(0u16..0x400), 1..=MAX_POINTS),
    )
        .prop_map(|(se, mantissas)| {
            mantissas
                .into_iter()
                .map(|m| {
                    [
                        ((se[0] as u16 & 0x3F) << 10) | m[0],
                        ((se[1] as u16 & 0x3F) << 10) | m[1],
                        ((se[2] as u16 & 0x3F) << 10) | m[2],
                    ]
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// compress → decompress is the identity on any leaf.
    #[test]
    fn codec_round_trips(points in arb_leaf()) {
        let leaf = codec::compress(&points);
        let mut out = [[0u16; 3]; MAX_POINTS];
        let flags = codec::decompress(leaf.bytes(), points.len(), &mut out);
        prop_assert_eq!(flags, leaf.flags());
        prop_assert_eq!(&out[..points.len()], &points[..]);
    }

    /// The encoded size matches the analytic size formula, and never
    /// exceeds the uncompressed 16-bit footprint plus the header.
    #[test]
    fn codec_size_is_exact_and_bounded(points in arb_leaf()) {
        let leaf = codec::compress(&points);
        let bits = codec::compressed_size_bits(points.len(), leaf.flags());
        prop_assert_eq!(leaf.len(), bits.div_ceil(8));
        let uncompressed_bits = points.len() * 48 + 3;
        prop_assert!(bits <= uncompressed_bits);
    }

    /// Fully similar leaves always compress all three coordinates.
    #[test]
    fn similar_leaves_compress_fully(points in similar_leaf()) {
        let leaf = codec::compress(&points);
        prop_assert_eq!(leaf.flags(), bonsai_isa::CoordFlags::ALL);
        // 3 header bits + n×30 mantissa bits + 18 shared bits.
        prop_assert_eq!(
            codec::compressed_size_bits(points.len(), leaf.flags()),
            3 + points.len() * 30 + 18
        );
    }

    /// The full instruction path (LDSPZPB → CPRZPB → STZPB → LDDCP)
    /// reproduces the f16 conversion of every coordinate in the vector
    /// registers.
    #[test]
    fn instruction_path_round_trips(
        points in prop::collection::vec(
            prop::array::uniform3(-120.0f32..120.0), 1..=MAX_POINTS)
    ) {
        let mut sim = SimEngine::disabled();
        let mut m = Machine::new();
        for (i, p) in points.iter().enumerate() {
            m.ldspzpb(&mut sim, i, 0x1000 + 12 * i as u64, *p);
        }
        m.cprzpb(&mut sim, points.len());
        let leaf = m.stzpb(&mut sim, 0x8000);

        let mut m2 = Machine::new();
        m2.lddcp(&mut sim, 0, points.len(), 0x8000, leaf.bytes());
        for (i, p) in points.iter().enumerate() {
            for (c, &coord) in p.iter().enumerate() {
                let got = m2.read_u16_lane(2 * c + i / 8, i % 8);
                let expect = bonsai_floatfmt::Half::from_f32(coord).to_bits();
                prop_assert_eq!(got, expect, "point {} coord {}", i, c);
            }
        }
    }
}
