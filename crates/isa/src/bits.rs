//! LSB-first bit packing for the Figure 6 compressed-leaf layout.

/// Writes variable-width fields into a byte buffer, LSB-first within each
/// byte (field bit 0 lands in the lowest unoccupied bit).
#[derive(Debug)]
pub struct BitWriter<'a> {
    bytes: &'a mut [u8],
    bit_pos: usize,
}

impl<'a> BitWriter<'a> {
    /// Starts writing at bit 0 of `bytes` (which must be zeroed).
    pub fn new(bytes: &'a mut [u8]) -> BitWriter<'a> {
        debug_assert!(
            bytes.iter().all(|&b| b == 0),
            "BitWriter expects a zeroed buffer"
        );
        BitWriter { bytes, bit_pos: 0 }
    }

    /// Appends the low `width` bits of `value`.
    ///
    /// # Panics
    ///
    /// Panics when the buffer overflows or `width > 32`.
    pub fn write(&mut self, value: u32, width: u32) {
        assert!(width <= 32);
        assert!(
            self.bit_pos + width as usize <= self.bytes.len() * 8,
            "bit buffer overflow at bit {}",
            self.bit_pos
        );
        let mut remaining = width;
        let mut v = value & mask(width);
        while remaining > 0 {
            let byte = self.bit_pos / 8;
            let off = (self.bit_pos % 8) as u32;
            let room = 8 - off;
            let take = remaining.min(room);
            self.bytes[byte] |= ((v & mask(take)) as u8) << off;
            v >>= take;
            self.bit_pos += take as usize;
            remaining -= take;
        }
    }

    /// Bits written so far.
    pub fn bit_len(&self) -> usize {
        self.bit_pos
    }
}

/// Reads variable-width fields written by [`BitWriter`].
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    bit_pos: usize,
}

impl<'a> BitReader<'a> {
    /// Starts reading at bit 0 of `bytes`.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, bit_pos: 0 }
    }

    /// Reads the next `width` bits.
    ///
    /// # Panics
    ///
    /// Panics when reading past the end of the buffer or `width > 32`.
    pub fn read(&mut self, width: u32) -> u32 {
        assert!(width <= 32);
        assert!(
            self.bit_pos + width as usize <= self.bytes.len() * 8,
            "bit buffer underflow at bit {}",
            self.bit_pos
        );
        let mut out: u32 = 0;
        let mut got = 0;
        while got < width {
            let byte = self.bit_pos / 8;
            let off = (self.bit_pos % 8) as u32;
            let room = 8 - off;
            let take = (width - got).min(room);
            let chunk = ((self.bytes[byte] >> off) as u32) & mask(take);
            out |= chunk << got;
            got += take;
            self.bit_pos += take as usize;
        }
        out
    }

    /// Bits consumed so far.
    pub fn bit_len(&self) -> usize {
        self.bit_pos
    }
}

fn mask(width: u32) -> u32 {
    if width >= 32 {
        u32::MAX
    } else {
        (1 << width) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_mixed_widths() {
        let mut buf = [0u8; 16];
        let fields = [
            (0b101u32, 3u32),
            (0x3FF, 10),
            (0, 1),
            (0x2A, 6),
            (1, 1),
            (0xFFFF, 16),
        ];
        {
            let mut w = BitWriter::new(&mut buf);
            for &(v, width) in &fields {
                w.write(v, width);
            }
            assert_eq!(w.bit_len(), 37);
        }
        let mut r = BitReader::new(&buf);
        for &(v, width) in &fields {
            assert_eq!(r.read(width), v, "width {width}");
        }
    }

    #[test]
    fn values_are_masked_to_width() {
        let mut buf = [0u8; 4];
        let mut w = BitWriter::new(&mut buf);
        w.write(0xFFFF_FFFF, 5);
        w.write(0, 3);
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read(5), 0x1F);
        assert_eq!(r.read(3), 0);
    }

    #[test]
    fn crossing_byte_boundaries() {
        let mut buf = [0u8; 4];
        let mut w = BitWriter::new(&mut buf);
        w.write(0b1, 7);
        w.write(0b10_1010_1010, 10); // straddles bytes 0..3
        let mut r = BitReader::new(&buf);
        assert_eq!(r.read(7), 1);
        assert_eq!(r.read(10), 0b10_1010_1010);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut buf = [0u8; 1];
        let mut w = BitWriter::new(&mut buf);
        w.write(0, 9);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let buf = [0u8; 1];
        let mut r = BitReader::new(&buf);
        r.read(9);
    }
}
