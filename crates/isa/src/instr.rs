use std::fmt;

/// A Bonsai-extension instruction with its operands — Table II of the
/// paper, as data.
///
/// [`Machine`](crate::Machine) executes these semantics through dedicated
/// methods (the hot path); this enum is the *descriptive* form used for
/// disassembly in reports and for asserting that the machine's micro-op
/// charges match the decoder expansion the paper specifies.
///
/// # Examples
///
/// ```
/// use bonsai_isa::Instruction;
///
/// let i = Instruction::Lddcp { v_base: 0, num_pts: 15, slices: 4 };
/// assert_eq!(i.micro_ops(), 8); // 4 loads + decompress + 3 write-backs
/// assert_eq!(i.to_string(), "LDDCP v0, #15, [r_addr], #4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// Load Single-float Point into ZipPts Buffer.
    Ldspzpb {
        /// Buffer position the point is placed at.
        index: u8,
    },
    /// Compress ZipPts Buffer.
    Cprzpb {
        /// Number of valid points in the buffer.
        num_pts: u8,
    },
    /// Store ZipPts Buffer.
    Stzpb {
        /// Number of 128-bit slices to store.
        slices: u8,
    },
    /// Load-Decompressing Compressed Points.
    Lddcp {
        /// First of the six destination vector registers.
        v_base: u8,
        /// Number of points encoded in the structure.
        num_pts: u8,
        /// Number of 128-bit slices to load.
        slices: u8,
    },
    /// Square Difference With Error, low half.
    Sqdwel {
        /// Destination for the four squared differences.
        v_sq_diff: u8,
        /// Destination for the four worst-case errors.
        v_error: u8,
        /// The f32 operand (query coordinate broadcast).
        v_a: u8,
        /// The f16 operand (leaf coordinates).
        v_b: u8,
    },
    /// Square Difference With Error, high half.
    Sqdweh {
        /// Destination for the four squared differences.
        v_sq_diff: u8,
        /// Destination for the four worst-case errors.
        v_error: u8,
        /// The f32 operand.
        v_a: u8,
        /// The f16 operand.
        v_b: u8,
    },
}

impl Instruction {
    /// The assembler mnemonic.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Instruction::Ldspzpb { .. } => "LDSPZPB",
            Instruction::Cprzpb { .. } => "CPRZPB",
            Instruction::Stzpb { .. } => "STZPB",
            Instruction::Lddcp { .. } => "LDDCP",
            Instruction::Sqdwel { .. } => "SQDWEL",
            Instruction::Sqdweh { .. } => "SQDWEH",
        }
    }

    /// The number of micro-ops the decoder expands this instruction into
    /// (Section IV-C's descriptions).
    pub fn micro_ops(&self) -> u32 {
        match self {
            Instruction::Ldspzpb { .. } => 2, // load + convert/place
            Instruction::Cprzpb { .. } => 2,  // compare pass + reorder pass
            Instruction::Stzpb { slices } => *slices as u32,
            // One load per slice + decompress + 3 write-backs (six
            // registers, two at a time).
            Instruction::Lddcp { slices, .. } => *slices as u32 + 4,
            Instruction::Sqdwel { .. } | Instruction::Sqdweh { .. } => 1,
        }
    }

    /// Whether the instruction belongs to the compress, decompress or
    /// computation category of Table II.
    pub fn category(&self) -> &'static str {
        match self {
            Instruction::Ldspzpb { .. }
            | Instruction::Cprzpb { .. }
            | Instruction::Stzpb { .. } => "compress",
            Instruction::Lddcp { .. } => "decompress",
            Instruction::Sqdwel { .. } | Instruction::Sqdweh { .. } => "computation",
        }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Instruction::Ldspzpb { index } => write!(f, "LDSPZPB #{index}, [r_addr]"),
            Instruction::Cprzpb { num_pts } => write!(f, "CPRZPB r_size, #{num_pts}"),
            Instruction::Stzpb { slices } => write!(f, "STZPB [r_addr], #{slices}"),
            Instruction::Lddcp {
                v_base,
                num_pts,
                slices,
            } => {
                write!(f, "LDDCP v{v_base}, #{num_pts}, [r_addr], #{slices}")
            }
            Instruction::Sqdwel {
                v_sq_diff,
                v_error,
                v_a,
                v_b,
            } => {
                write!(f, "SQDWEL v{v_sq_diff}, v{v_error}, v{v_a}, v{v_b}")
            }
            Instruction::Sqdweh {
                v_sq_diff,
                v_error,
                v_a,
                v_b,
            } => {
                write!(f, "SQDWEH v{v_sq_diff}, v{v_error}, v{v_a}, v{v_b}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_distinct_mnemonics_plus_high_variant() {
        // The paper counts "only five new instructions" treating
        // SQDWEL/SQDWEH as the L/H forms of one operation; all six
        // encodings are distinct here.
        let all = [
            Instruction::Ldspzpb { index: 0 },
            Instruction::Cprzpb { num_pts: 15 },
            Instruction::Stzpb { slices: 4 },
            Instruction::Lddcp {
                v_base: 0,
                num_pts: 15,
                slices: 4,
            },
            Instruction::Sqdwel {
                v_sq_diff: 1,
                v_error: 2,
                v_a: 3,
                v_b: 4,
            },
            Instruction::Sqdweh {
                v_sq_diff: 1,
                v_error: 2,
                v_a: 3,
                v_b: 4,
            },
        ];
        let mut names: Vec<&str> = all.iter().map(|i| i.mnemonic()).collect();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn categories_match_table2() {
        assert_eq!(Instruction::Ldspzpb { index: 0 }.category(), "compress");
        assert_eq!(
            Instruction::Lddcp {
                v_base: 0,
                num_pts: 1,
                slices: 1
            }
            .category(),
            "decompress"
        );
        assert_eq!(
            Instruction::Sqdwel {
                v_sq_diff: 0,
                v_error: 1,
                v_a: 2,
                v_b: 3
            }
            .category(),
            "computation"
        );
    }

    #[test]
    fn micro_op_counts() {
        assert_eq!(Instruction::Stzpb { slices: 4 }.micro_ops(), 4);
        assert_eq!(
            Instruction::Lddcp {
                v_base: 0,
                num_pts: 15,
                slices: 4
            }
            .micro_ops(),
            8
        );
        assert_eq!(
            Instruction::Sqdweh {
                v_sq_diff: 0,
                v_error: 1,
                v_a: 2,
                v_b: 3
            }
            .micro_ops(),
            1
        );
    }

    #[test]
    fn disassembly_is_readable() {
        let i = Instruction::Sqdwel {
            v_sq_diff: 4,
            v_error: 5,
            v_a: 6,
            v_b: 0,
        };
        assert_eq!(i.to_string(), "SQDWEL v4, v5, v6, v0");
    }
}
