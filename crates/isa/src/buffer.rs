use crate::codec::{self, CompressedLeaf, CoordFlags};

pub use crate::codec::{MAX_POINTS, SLICE_BYTES};

/// The ZipPts buffer: the staging storage of the Bonsai
/// compression/decompression unit (Figure 5).
///
/// The hardware buffer holds either up to 16 uncompressed f16 points or a
/// compressed structure, and talks to the vector register file and the
/// load/store unit through 128-bit ports. This model keeps both views —
/// the point array and the compressed byte staging area — and the
/// [`Machine`](crate::Machine) instructions move data between them
/// exactly as the paper's micro-operations do.
///
/// # Examples
///
/// ```
/// use bonsai_isa::ZipPtsBuffer;
///
/// let mut zip = ZipPtsBuffer::new();
/// zip.write_point(0, [0x3C00, 0xC000, 0x4400]); // 1.0, -2.0, 4.0
/// zip.write_point(1, [0x3E00, 0xC100, 0x4480]);
/// let len = zip.compress(2).len();
/// assert!(len <= 16);
/// ```
#[derive(Debug, Clone)]
pub struct ZipPtsBuffer {
    points: [[u16; 3]; MAX_POINTS],
    staged: [u8; codec::MAX_COMPRESSED_BYTES],
    staged_len: usize,
    compressed: Option<CompressedLeaf>,
}

impl ZipPtsBuffer {
    /// An empty buffer.
    pub fn new() -> ZipPtsBuffer {
        ZipPtsBuffer {
            points: [[0; 3]; MAX_POINTS],
            staged: [0; codec::MAX_COMPRESSED_BYTES],
            staged_len: 0,
            compressed: None,
        }
    }

    /// Writes an f16 point at buffer position `index` (the `LDSPZPB`
    /// placement step).
    ///
    /// # Panics
    ///
    /// Panics if `index >= 16`.
    pub fn write_point(&mut self, index: usize, h16: [u16; 3]) {
        self.points[index] = h16;
        self.compressed = None; // Point writes invalidate a stale structure.
    }

    /// Reads the f16 point at `index`.
    pub fn point(&self, index: usize) -> [u16; 3] {
        self.points[index]
    }

    /// Compresses the first `num_pts` points in place (the `CPRZPB`
    /// semantics) and returns the resulting structure.
    ///
    /// # Panics
    ///
    /// Panics if `num_pts` is not in `1..=16`.
    pub fn compress(&mut self, num_pts: usize) -> &CompressedLeaf {
        let leaf = codec::compress(&self.points[..num_pts]);
        self.compressed.insert(leaf)
    }

    /// The compressed structure produced by the last
    /// [`compress`](Self::compress), if any.
    pub fn compressed(&self) -> Option<&CompressedLeaf> {
        self.compressed.as_ref()
    }

    /// Stages compressed bytes arriving from memory (the load
    /// micro-operations of `LDDCP`).
    ///
    /// # Panics
    ///
    /// Panics if `bytes` exceeds the buffer capacity.
    pub fn stage_compressed(&mut self, bytes: &[u8]) {
        assert!(
            bytes.len() <= codec::MAX_COMPRESSED_BYTES,
            "compressed structure of {} bytes exceeds the ZipPts buffer",
            bytes.len()
        );
        self.staged[..bytes.len()].copy_from_slice(bytes);
        self.staged_len = bytes.len();
    }

    /// Decompresses the staged bytes into the point array (the
    /// decompression micro-operation of `LDDCP`) and returns the decoded
    /// flags.
    ///
    /// # Panics
    ///
    /// Panics if nothing was staged or `num_pts` is out of range.
    pub fn decompress(&mut self, num_pts: usize) -> CoordFlags {
        assert!(self.staged_len > 0, "no compressed structure staged");
        codec::decompress(&self.staged[..self.staged_len], num_pts, &mut self.points)
    }
}

impl Default for ZipPtsBuffer {
    fn default() -> ZipPtsBuffer {
        ZipPtsBuffer::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_floatfmt::Half;

    fn h(x: f32, y: f32, z: f32) -> [u16; 3] {
        [
            Half::from_f32(x).to_bits(),
            Half::from_f32(y).to_bits(),
            Half::from_f32(z).to_bits(),
        ]
    }

    #[test]
    fn compress_stage_decompress_round_trip() {
        let mut zip = ZipPtsBuffer::new();
        let pts = [
            h(10.0, -3.0, 1.5),
            h(11.0, -3.5, 1.25),
            h(12.0, -3.25, 1.75),
        ];
        for (i, p) in pts.iter().enumerate() {
            zip.write_point(i, *p);
        }
        let leaf = zip.compress(3).clone();

        let mut other = ZipPtsBuffer::new();
        other.stage_compressed(leaf.bytes());
        let flags = other.decompress(3);
        assert_eq!(flags, leaf.flags());
        for (i, p) in pts.iter().enumerate() {
            assert_eq!(other.point(i), *p);
        }
    }

    #[test]
    fn point_writes_invalidate_compressed_view() {
        let mut zip = ZipPtsBuffer::new();
        zip.write_point(0, h(1.0, 2.0, 3.0));
        zip.compress(1);
        assert!(zip.compressed().is_some());
        zip.write_point(0, h(4.0, 5.0, 6.0));
        assert!(zip.compressed().is_none());
    }

    #[test]
    #[should_panic(expected = "no compressed structure")]
    fn decompress_without_stage_panics() {
        ZipPtsBuffer::new().decompress(3);
    }

    #[test]
    #[should_panic]
    fn point_index_out_of_range_panics() {
        ZipPtsBuffer::new().write_point(16, [0; 3]);
    }
}
