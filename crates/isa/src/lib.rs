//! Architectural simulator for the Bonsai ISA extensions.
//!
//! The paper (Section IV) adds two hardware blocks to an out-of-order
//! ARM core — a compression/decompression unit built around a 16-point
//! *ZipPts buffer*, and a vector group of `(A−B′)²`-with-error functional
//! units — and exposes them through six new instructions (Table II):
//!
//! | Instruction | Category | Effect |
//! |---|---|---|
//! | `LDSPZPB`  | compress | load one `f32` point, narrow to `f16`, place in the buffer |
//! | `CPRZPB`   | compress | compress the buffer in place (value similarity, Fig. 6) |
//! | `STZPB`    | compress | store the buffer to memory in 128-bit slices |
//! | `LDDCP`    | decompress | load slices, decompress, write six vector registers |
//! | `SQDWEL`   | compute  | vector `(A−B′)²` + worst-case error, low half |
//! | `SQDWEH`   | compute  | vector `(A−B′)²` + worst-case error, high half |
//!
//! This crate implements those semantics bit-exactly at the architectural
//! level: [`Machine`] holds the vector register file, the
//! [`ZipPtsBuffer`] and the `part_error_mem` LUT, and each instruction
//! mutates that state while charging its micro-op expansion and memory
//! references to a [`SimEngine`](bonsai_sim::SimEngine) — the same
//! expansion the paper's decoder performs (e.g. `LDDCP` = one load µop
//! per slice + one decompress µop + three write-back µops).
//!
//! The [`codec`] module is the Compress/Decompress Logic: the exact
//! Figure 6 bit layout. The [`software`] module is the paper's strawman —
//! the same codec done with ordinary scalar instructions — used by the
//! "software-only compression is ~7× slower" ablation.
//!
//! # Examples
//!
//! ```
//! use bonsai_isa::Machine;
//! use bonsai_sim::SimEngine;
//!
//! let mut sim = SimEngine::disabled();
//! let mut m = Machine::new();
//! // Compress a 3-point leaf.
//! let pts = [[1.0f32, -2.0, 3.0], [1.1, -2.1, 3.1], [0.9, -1.9, 2.9]];
//! for (i, p) in pts.iter().enumerate() {
//!     m.ldspzpb(&mut sim, i, 0x1000 + 12 * i as u64, *p);
//! }
//! let size = m.cprzpb(&mut sim, pts.len());
//! assert!(size < 36); // smaller than the 3 × 12 B originals
//! ```

#![forbid(unsafe_code)]

pub mod codec;
pub mod software;

mod bits;
mod buffer;
mod instr;
mod machine;

pub use buffer::{ZipPtsBuffer, MAX_POINTS, SLICE_BYTES};
pub use codec::{CompressedLeaf, CoordFlags, MAX_COMPRESSED_BYTES};
pub use instr::Instruction;
pub use machine::{HalfSel, Machine, VregId};
