//! The Compress/Decompress Logic: the exact bit layout of Figure 6.
//!
//! A leaf of `n ≤ 16` points, already narrowed to `f16` (one `u16` per
//! coordinate), is packed as:
//!
//! ```text
//! [cX cY cZ : 3 bits]                      compression flags
//! [n × (xm ym zm)] each 10 bits            mantissas, point-interleaved
//! [one 6-bit <sign,exp> per compressed coordinate]
//! [n × 6-bit <sign,exp> per uncompressed coordinate, point-interleaved]
//! [zero padding to the next byte]
//! ```
//!
//! A coordinate is *compressed* when its 6-bit `<sign, exponent>` tuple is
//! identical across all `n` points (the paper's value-similarity
//! observation, Section III-A). Mantissas are never compressed
//! (Section III-B: they rarely repeat).
//!
//! Sizes line up with the paper: a full 15-point leaf with all three
//! coordinates compressed costs `3 + 15×30 + 3×6 = 471` bits → 59 bytes →
//! four 128-bit slices (64 B), i.e. ~35 % of the 180 useful baseline bytes
//! (12 B/point), matching Figure 9b's ~37 % once fallback reads are added.

// Coordinate loops index fixed-width [u16; 3] rows; the indexed form
// mirrors the hardware's per-coordinate lanes.
#![allow(clippy::needless_range_loop)]

use crate::bits::{BitReader, BitWriter};

/// Maximum points a ZipPts buffer (and therefore a compressed leaf) holds.
pub const MAX_POINTS: usize = 16;

/// Bytes per ZipPts buffer slice (one 128-bit port transfer).
pub const SLICE_BYTES: usize = 16;

/// Upper bound on the padded size of a compressed leaf: 16 points,
/// nothing compressible → 771 bits → 97 bytes → 7 slices.
pub const MAX_COMPRESSED_BYTES: usize = 112;

/// Bits of an f16 mantissa field.
const MANTISSA_BITS: u32 = 10;
/// Bits of an f16 `<sign, exponent>` tuple.
const SIGN_EXP_BITS: u32 = 6;
/// Bits of the header (`cX`, `cY`, `cZ`).
const HEADER_BITS: u32 = 3;

/// The per-coordinate compression flags (`cX`, `cY`, `cZ` in Figure 6).
///
/// # Examples
///
/// ```
/// use bonsai_isa::CoordFlags;
///
/// let f = CoordFlags { x: true, y: false, z: true };
/// assert_eq!(f.to_bits(), 0b101);
/// assert_eq!(f.count_compressed(), 2);
/// assert_eq!(CoordFlags::from_bits(0b101), f);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CoordFlags {
    /// The x coordinate's `<sign, exp>` is stored once for the leaf.
    pub x: bool,
    /// Same for y.
    pub y: bool,
    /// Same for z.
    pub z: bool,
}

impl CoordFlags {
    /// All three coordinates compressed.
    pub const ALL: CoordFlags = CoordFlags {
        x: true,
        y: true,
        z: true,
    };

    /// No coordinate compressed.
    pub const NONE: CoordFlags = CoordFlags {
        x: false,
        y: false,
        z: false,
    };

    /// Decodes the 3-bit header (bit 0 = x, bit 1 = y, bit 2 = z).
    pub fn from_bits(bits: u8) -> CoordFlags {
        CoordFlags {
            x: bits & 1 != 0,
            y: bits & 2 != 0,
            z: bits & 4 != 0,
        }
    }

    /// Encodes the 3-bit header.
    pub fn to_bits(self) -> u8 {
        self.x as u8 | (self.y as u8) << 1 | (self.z as u8) << 2
    }

    /// Whether coordinate `c` (0 = x, 1 = y, 2 = z) is compressed.
    pub fn is_compressed(self, c: usize) -> bool {
        match c {
            0 => self.x,
            1 => self.y,
            2 => self.z,
            _ => panic!("coordinate index {c} out of range"),
        }
    }

    /// Number of compressed coordinates (0–3).
    pub fn count_compressed(self) -> u32 {
        self.x as u32 + self.y as u32 + self.z as u32
    }
}

/// A compressed leaf as stored in the `cmprsd_strct_array`.
///
/// Holds the packed bytes (header + mantissas + sign/exponent tuples,
/// zero-padded to a whole byte), their unpadded length, and the decoded
/// flags for convenience.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedLeaf {
    bytes: [u8; MAX_COMPRESSED_BYTES],
    len: u8,
    num_pts: u8,
    flags: CoordFlags,
}

impl CompressedLeaf {
    /// The packed bytes (unpadded length).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Unpadded size in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the structure is empty (never true for a valid leaf).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of points encoded.
    pub fn num_pts(&self) -> usize {
        self.num_pts as usize
    }

    /// The compression flags.
    pub fn flags(&self) -> CoordFlags {
        self.flags
    }

    /// Number of 128-bit slices needed to move this structure through the
    /// ZipPts buffer ports (`#ZipPtsSlices` of `STZPB`/`LDDCP`).
    pub fn slices(&self) -> usize {
        slices_for_bytes(self.len as usize)
    }
}

/// Number of 128-bit slices covering `bytes` bytes.
pub fn slices_for_bytes(bytes: usize) -> usize {
    bytes.div_ceil(SLICE_BYTES)
}

/// The packed size in bits of a leaf of `num_pts` points under `flags`.
pub fn compressed_size_bits(num_pts: usize, flags: CoordFlags) -> usize {
    let shared = flags.count_compressed() as usize;
    HEADER_BITS as usize
        + num_pts * 3 * MANTISSA_BITS as usize
        + shared * SIGN_EXP_BITS as usize
        + num_pts * (3 - shared) * SIGN_EXP_BITS as usize
}

/// The 6-bit `<sign, exponent>` tuple of an f16 bit pattern.
fn sign_exp(h: u16) -> u32 {
    (h >> MANTISSA_BITS) as u32
}

/// The 10-bit mantissa of an f16 bit pattern.
fn mantissa(h: u16) -> u32 {
    (h & 0x3FF) as u32
}

/// Determines which coordinates have a uniform `<sign, exponent>` across
/// all points — the comparison pass of `CPRZPB`.
///
/// # Panics
///
/// Panics when `points` is empty or longer than [`MAX_POINTS`].
pub fn choose_flags(points: &[[u16; 3]]) -> CoordFlags {
    assert!(
        (1..=MAX_POINTS).contains(&points.len()),
        "leaf must hold 1..=16 points, got {}",
        points.len()
    );
    let first = points[0];
    let mut flags = CoordFlags::ALL;
    for p in &points[1..] {
        if sign_exp(p[0]) != sign_exp(first[0]) {
            flags.x = false;
        }
        if sign_exp(p[1]) != sign_exp(first[1]) {
            flags.y = false;
        }
        if sign_exp(p[2]) != sign_exp(first[2]) {
            flags.z = false;
        }
    }
    flags
}

/// Compresses a leaf of f16 points — the bit-reordering pass of `CPRZPB`
/// (Figure 6).
///
/// # Panics
///
/// Panics when `points` is empty or longer than [`MAX_POINTS`].
pub fn compress(points: &[[u16; 3]]) -> CompressedLeaf {
    let flags = choose_flags(points);
    let bits = compressed_size_bits(points.len(), flags);
    let len = bits.div_ceil(8);

    let mut out = CompressedLeaf {
        bytes: [0; MAX_COMPRESSED_BYTES],
        len: len as u8,
        num_pts: points.len() as u8,
        flags,
    };
    let mut w = BitWriter::new(&mut out.bytes[..len]);
    w.write(flags.to_bits() as u32, HEADER_BITS);
    // Mantissas, point-interleaved.
    for p in points {
        for c in 0..3 {
            w.write(mantissa(p[c]), MANTISSA_BITS);
        }
    }
    // One shared <sign, exp> per compressed coordinate.
    for c in 0..3 {
        if flags.is_compressed(c) {
            w.write(sign_exp(points[0][c]), SIGN_EXP_BITS);
        }
    }
    // Per-point <sign, exp> for uncompressed coordinates, interleaved.
    for p in points {
        for c in 0..3 {
            if !flags.is_compressed(c) {
                w.write(sign_exp(p[c]), SIGN_EXP_BITS);
            }
        }
    }
    debug_assert_eq!(w.bit_len(), bits);
    out
}

/// Decompresses `bytes` (the packed structure) into `out[..num_pts]` —
/// the decompression micro-operation of `LDDCP`.
///
/// Returns the decoded flags.
///
/// # Panics
///
/// Panics when `num_pts` is out of range or `bytes` is shorter than the
/// encoded structure requires.
pub fn decompress(bytes: &[u8], num_pts: usize, out: &mut [[u16; 3]; MAX_POINTS]) -> CoordFlags {
    assert!(
        (1..=MAX_POINTS).contains(&num_pts),
        "leaf must hold 1..=16 points, got {num_pts}"
    );
    let mut r = BitReader::new(bytes);
    let flags = CoordFlags::from_bits(r.read(HEADER_BITS) as u8);
    // Mantissas first.
    for p in out.iter_mut().take(num_pts) {
        for c in 0..3 {
            p[c] = r.read(MANTISSA_BITS) as u16;
        }
    }
    // Shared tuples.
    let mut shared = [0u32; 3];
    for (c, s) in shared.iter_mut().enumerate() {
        if flags.is_compressed(c) {
            *s = r.read(SIGN_EXP_BITS);
        }
    }
    // Merge shared and per-point tuples into the mantissas.
    for p in out.iter_mut().take(num_pts) {
        for c in 0..3 {
            let se = if flags.is_compressed(c) {
                shared[c]
            } else {
                r.read(SIGN_EXP_BITS)
            };
            p[c] |= (se as u16) << MANTISSA_BITS;
        }
    }
    debug_assert_eq!(r.bit_len(), compressed_size_bits(num_pts, flags));
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_floatfmt::Half;

    fn to_h16(pts: &[[f32; 3]]) -> Vec<[u16; 3]> {
        pts.iter()
            .map(|p| {
                [
                    Half::from_f32(p[0]).to_bits(),
                    Half::from_f32(p[1]).to_bits(),
                    Half::from_f32(p[2]).to_bits(),
                ]
            })
            .collect()
    }

    #[test]
    fn round_trip_similar_points() {
        // The paper's Figure 3 points: x values all in [8, 16) (uniform
        // sign/exponent), y values spanning [-2.5, -8.5] across three
        // exponent buckets (not compressible), z values all in [1, 2).
        let pts = to_h16(&[
            [8.2, -4.8, 1.1],
            [9.7, -8.5, 1.3],
            [12.4, -6.0, 1.0],
            [12.9, -3.9, 1.2],
            [14.7, -2.5, 1.4],
        ]);
        let leaf = compress(&pts);
        assert_eq!(
            leaf.flags(),
            CoordFlags {
                x: true,
                y: false,
                z: true
            }
        );
        let mut out = [[0u16; 3]; MAX_POINTS];
        let flags = decompress(leaf.bytes(), pts.len(), &mut out);
        assert_eq!(flags, leaf.flags());
        assert_eq!(&out[..pts.len()], &pts[..]);
    }

    #[test]
    fn round_trip_dissimilar_points() {
        let pts = to_h16(&[[1.0, -100.0, 0.001], [-50.0, 0.5, 30000.0], [2.0, 2.0, 2.0]]);
        let leaf = compress(&pts);
        assert_eq!(leaf.flags(), CoordFlags::NONE);
        let mut out = [[0u16; 3]; MAX_POINTS];
        decompress(leaf.bytes(), pts.len(), &mut out);
        assert_eq!(&out[..pts.len()], &pts[..]);
    }

    #[test]
    fn round_trip_single_point_compresses_fully() {
        let pts = to_h16(&[[3.5, -2.5, 0.25]]);
        let leaf = compress(&pts);
        assert_eq!(leaf.flags(), CoordFlags::ALL);
        // 3 + 30 + 18 = 51 bits → 7 bytes.
        assert_eq!(leaf.len(), 7);
        let mut out = [[0u16; 3]; MAX_POINTS];
        decompress(leaf.bytes(), 1, &mut out);
        assert_eq!(out[0], pts[0]);
    }

    #[test]
    fn paper_sizes_for_full_leaf() {
        // 15 points, all coordinates compressed: 471 bits → 59 B → 4 slices.
        assert_eq!(compressed_size_bits(15, CoordFlags::ALL), 471);
        let pts: Vec<[u16; 3]> = (0..15)
            .map(|i| {
                let v = 8.0 + 0.4 * i as f32; // all in [8, 16): shared exponent
                [
                    Half::from_f32(v).to_bits(),
                    Half::from_f32(v + 0.05).to_bits(),
                    Half::from_f32(v + 0.11).to_bits(),
                ]
            })
            .collect();
        let leaf = compress(&pts);
        assert_eq!(leaf.flags(), CoordFlags::ALL);
        assert_eq!(leaf.len(), 59);
        assert_eq!(leaf.slices(), 4);
        // Nothing compressed: 3 + 450 + 270 = 723 bits → 91 B → 6 slices.
        assert_eq!(compressed_size_bits(15, CoordFlags::NONE), 723);
    }

    #[test]
    fn worst_case_fits_max_bytes() {
        assert_eq!(compressed_size_bits(16, CoordFlags::NONE), 771);
        assert!(771usize.div_ceil(8) <= MAX_COMPRESSED_BYTES);
        assert_eq!(slices_for_bytes(97) * SLICE_BYTES, MAX_COMPRESSED_BYTES);
    }

    #[test]
    fn round_trip_all_leaf_sizes() {
        for n in 1..=MAX_POINTS {
            let pts: Vec<[u16; 3]> = (0..n)
                .map(|i| {
                    let v = -20.0 + 3.0 * i as f32; // mixed signs/exponents
                    [
                        Half::from_f32(v).to_bits(),
                        Half::from_f32(v * 0.5).to_bits(),
                        Half::from_f32(1.5).to_bits(),
                    ]
                })
                .collect();
            let leaf = compress(&pts);
            let mut out = [[0u16; 3]; MAX_POINTS];
            let flags = decompress(leaf.bytes(), n, &mut out);
            assert_eq!(flags, leaf.flags(), "n={n}");
            assert_eq!(&out[..n], &pts[..], "n={n}");
        }
    }

    #[test]
    fn negative_zero_and_subnormals_round_trip() {
        let pts = vec![
            [0x8000u16, 0x0001, 0x03FF], // -0, min subnormal, max subnormal
            [0x8000, 0x0002, 0x0201],
        ];
        let leaf = compress(&pts);
        let mut out = [[0u16; 3]; MAX_POINTS];
        decompress(leaf.bytes(), 2, &mut out);
        assert_eq!(&out[..2], &pts[..]);
    }

    #[test]
    #[should_panic(expected = "1..=16")]
    fn empty_leaf_rejected() {
        compress(&[]);
    }

    #[test]
    #[should_panic(expected = "1..=16")]
    fn oversized_leaf_rejected() {
        compress(&[[0u16; 3]; 17]);
    }

    #[test]
    fn flags_bit_encoding_matches_figure6() {
        // Figure 6's example: only x compressed → encoding "100" with cX
        // first. Our header stores cX in bit 0.
        let f = CoordFlags {
            x: true,
            y: false,
            z: false,
        };
        assert_eq!(f.to_bits(), 0b001);
        assert_eq!(f.count_compressed(), 1);
    }
}
