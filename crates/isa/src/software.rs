//! Software-only (de)compression — the strawman of Section IV-A.
//!
//! The paper justifies hardware support by noting that "iteratively
//! inspecting and re-ordering bits in software slows down radius search in
//! the order of 7×". This module implements that strawman: the same
//! Figure 6 codec executed with ordinary scalar instructions, charging a
//! documented per-field cost model to the [`SimEngine`]. The
//! `ablation_software_codec` bench compares it against the
//! hardware-assisted path.
//!
//! Cost model (scalar micro-ops, justified by what a compiled bit-stream
//! reader/writer executes per field):
//!
//! * extracting or inserting one bit field that may straddle byte
//!   boundaries: 2 shifts + 1 or/and + mask + position update ≈
//!   [`FIELD_OPS`] integer ops;
//! * a software f16 ↔ f32 conversion (classify, branch on
//!   normal/subnormal, shift, bias-adjust):
//!   [`CONVERT_OPS`] integer ops — AArch64 has `FCVT` for f16 *storage*,
//!   but the decompressed fields here are raw mantissa/sign-exponent
//!   fragments that must be reassembled before any conversion, so the
//!   reassembly dominates either way;
//! * per-point loop bookkeeping: [`POINT_OVERHEAD_OPS`] ops.
//!
//! Functionally the software codec is bit-identical to the hardware one
//! (asserted by unit tests), so the ablation isolates pure overhead.

use bonsai_sim::{OpClass, SimEngine};

use crate::codec::{self, CompressedLeaf, CoordFlags, MAX_POINTS};

/// Scalar ops to read/write one bit field of the packed stream.
pub const FIELD_OPS: u64 = 6;

/// Scalar ops for a software f16→f32 (or f32→f16) conversion.
pub const CONVERT_OPS: u64 = 18;

/// Scalar loop/bookkeeping ops per point.
pub const POINT_OVERHEAD_OPS: u64 = 6;

/// Bytes the software bit reader loads per access (one 64-bit word).
const WORD_BYTES: u32 = 8;

/// Software equivalent of `LDSPZPB` + `CPRZPB` + `STZPB`: compresses a
/// leaf of `f32` points, charging scalar costs.
///
/// `points_addr` is the address of the first point (12-byte stride, as
/// the baseline leaf layout); `dst_addr` is where the packed structure is
/// written.
pub fn compress_sw(
    sim: &mut SimEngine,
    points: &[[f32; 3]],
    points_addr: u64,
    dst_addr: u64,
) -> CompressedLeaf {
    let n = points.len();
    // Load the f32 points and convert each coordinate to f16 in software.
    let mut h16 = [[0u16; 3]; MAX_POINTS];
    for (i, p) in points.iter().enumerate() {
        sim.load(points_addr + 12 * i as u64, 12);
        sim.exec(OpClass::IntAlu, 3 * CONVERT_OPS + POINT_OVERHEAD_OPS);
        for c in 0..3 {
            h16[i][c] = bonsai_floatfmt::Half::from_f32(p[c]).to_bits();
        }
    }
    // Flag selection: one compare chain per point per coordinate.
    sim.exec(OpClass::IntAlu, 3 * n as u64 * 2);
    // Bit-stream writes: 3 mantissas per point, plus sign/exponent tuples.
    let leaf = codec::compress(&h16[..n]);
    let field_writes = 3 * n as u64
        + leaf.flags().count_compressed() as u64
        + (3 - leaf.flags().count_compressed()) as u64 * n as u64
        + 1;
    sim.exec(OpClass::IntAlu, field_writes * FIELD_OPS);
    // Store the packed bytes in 64-bit words.
    let words = (leaf.len() as u64).div_ceil(WORD_BYTES as u64);
    for w in 0..words {
        sim.store(dst_addr + w * WORD_BYTES as u64, WORD_BYTES);
    }
    leaf
}

/// Software equivalent of `LDDCP`: loads and decompresses a packed
/// structure into `f32` coordinates, charging scalar costs.
///
/// Returns the decoded flags; `out[..num_pts]` receives the f32 values of
/// the f16 points (what the distance code consumes).
pub fn decompress_sw(
    sim: &mut SimEngine,
    bytes: &[u8],
    num_pts: usize,
    addr: u64,
    out: &mut [[f32; 3]; MAX_POINTS],
) -> CoordFlags {
    // Load the packed bytes in 64-bit words.
    let words = (bytes.len() as u64).div_ceil(WORD_BYTES as u64);
    for w in 0..words {
        sim.load(addr + w * WORD_BYTES as u64, WORD_BYTES);
    }
    // Header + field extraction + reassembly + conversion, all scalar.
    let mut h16 = [[0u16; 3]; MAX_POINTS];
    let flags = codec::decompress(bytes, num_pts, &mut h16);
    let shared = flags.count_compressed() as u64;
    let field_reads = 1 + 3 * num_pts as u64 + shared + (3 - shared) * num_pts as u64;
    sim.exec(OpClass::IntAlu, field_reads * FIELD_OPS);
    sim.exec(
        OpClass::IntAlu,
        num_pts as u64 * (3 * CONVERT_OPS + POINT_OVERHEAD_OPS + 3/* merges */),
    );
    for i in 0..num_pts {
        for c in 0..3 {
            out[i][c] = bonsai_floatfmt::Half::from_bits(h16[i][c]).to_f32();
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_floatfmt::Half;
    use bonsai_sim::CpuConfig;

    fn pts() -> Vec<[f32; 3]> {
        (0..15)
            .map(|i| [30.0 + 0.2 * i as f32, -7.0 + 0.1 * i as f32, 0.5])
            .collect()
    }

    #[test]
    fn software_codec_matches_hardware_codec_bits() {
        let mut sim = SimEngine::disabled();
        let sw = compress_sw(&mut sim, &pts(), 0x1000, 0x8000);
        // The hardware path: convert + compress.
        let h16: Vec<[u16; 3]> = pts()
            .iter()
            .map(|p| {
                [
                    Half::from_f32(p[0]).to_bits(),
                    Half::from_f32(p[1]).to_bits(),
                    Half::from_f32(p[2]).to_bits(),
                ]
            })
            .collect();
        let hw = codec::compress(&h16);
        assert_eq!(sw, hw);
    }

    #[test]
    fn software_decompress_round_trips() {
        let mut sim = SimEngine::disabled();
        let leaf = compress_sw(&mut sim, &pts(), 0x1000, 0x8000);
        let mut out = [[0f32; 3]; MAX_POINTS];
        let flags = decompress_sw(&mut sim, leaf.bytes(), 15, 0x8000, &mut out);
        assert_eq!(flags, leaf.flags());
        for (i, p) in pts().iter().enumerate() {
            for c in 0..3 {
                assert_eq!(out[i][c], Half::from_f32(p[c]).to_f32(), "pt {i} coord {c}");
            }
        }
    }

    #[test]
    fn software_decompress_costs_many_scalar_ops() {
        let mut sim = SimEngine::new(&CpuConfig::a72_like());
        let leaf = {
            let mut warm = SimEngine::disabled();
            compress_sw(&mut warm, &pts(), 0x1000, 0x8000)
        };
        let mut out = [[0f32; 3]; MAX_POINTS];
        decompress_sw(&mut sim, leaf.bytes(), 15, 0x8000, &mut out);
        let t = sim.totals();
        // ~60 fields × 6 ops + 15 points × ~63 ops ≈ 1.3 k scalar ops —
        // vastly more than LDDCP's ≈8 micro-ops.
        assert!(
            t.ops_of(OpClass::IntAlu) > 800,
            "got {}",
            t.ops_of(OpClass::IntAlu)
        );
        assert!(t.loads >= 8);
    }
}
