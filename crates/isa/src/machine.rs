use bonsai_floatfmt::{Half, PartErrorMem};
use bonsai_sim::{OpClass, SimEngine};

use crate::buffer::{ZipPtsBuffer, MAX_POINTS, SLICE_BYTES};
use crate::codec::{slices_for_bytes, CompressedLeaf, CoordFlags};

/// Index of a 128-bit vector register (NEON `v0`–`v31`).
pub type VregId = usize;

/// Which half of the 8-lane f16 operand an `SQDWE` instruction computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HalfSel {
    /// Lanes 0..4 (`SQDWEL`).
    Low,
    /// Lanes 4..8 (`SQDWEH`).
    High,
}

/// Architectural state touched by the Bonsai extensions: the 32-entry
/// 128-bit vector register file, the [`ZipPtsBuffer`], and the
/// `part_error_mem` LUT inside the square-of-differences FUs.
///
/// Every instruction method takes a [`SimEngine`] and charges its micro-op
/// expansion and memory references exactly as the paper's decoder emits
/// them (Table II). Functionally, loads take the data as a parameter: the
/// simulated address space carries layout, not contents, so the caller
/// (who owns the real data) passes the value alongside the address — the
/// standard co-simulation arrangement.
///
/// # Examples
///
/// ```
/// use bonsai_isa::Machine;
/// use bonsai_sim::SimEngine;
///
/// let mut sim = SimEngine::disabled();
/// let mut m = Machine::new();
/// m.broadcast_f32(&mut sim, 8, 2.5);
/// assert_eq!(m.read_f32_lane(8, 3), 2.5);
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    vregs: [[u32; 4]; 32],
    zip: ZipPtsBuffer,
    lut: PartErrorMem,
}

impl Machine {
    /// A machine with zeroed registers and an empty buffer.
    pub fn new() -> Machine {
        Machine {
            vregs: [[0; 4]; 32],
            zip: ZipPtsBuffer::new(),
            lut: PartErrorMem::new(),
        }
    }

    /// Direct access to the ZipPts buffer (tests, diagnostics).
    pub fn zip_buffer(&self) -> &ZipPtsBuffer {
        &self.zip
    }

    // ------------------------------------------------------------------
    // Register-file lane accessors (architectural reads/writes; cost is
    // charged by the instructions that use them).
    // ------------------------------------------------------------------

    /// Reads a 32-bit float lane (`lane` in 0..4).
    pub fn read_f32_lane(&self, reg: VregId, lane: usize) -> f32 {
        f32::from_bits(self.vregs[reg][lane])
    }

    /// Writes a 32-bit float lane.
    pub fn write_f32_lane(&mut self, reg: VregId, lane: usize, value: f32) {
        self.vregs[reg][lane] = value.to_bits();
    }

    /// Reads a 16-bit lane (`lane` in 0..8).
    pub fn read_u16_lane(&self, reg: VregId, lane: usize) -> u16 {
        let word = self.vregs[reg][lane / 2];
        (word >> (16 * (lane % 2))) as u16
    }

    /// Writes a 16-bit lane.
    pub fn write_u16_lane(&mut self, reg: VregId, lane: usize, value: u16) {
        let word = &mut self.vregs[reg][lane / 2];
        let shift = 16 * (lane % 2);
        *word = (*word & !(0xFFFF << shift)) | ((value as u32) << shift);
    }

    // ------------------------------------------------------------------
    // Pre-existing NEON operations used alongside the Bonsai extensions.
    // ------------------------------------------------------------------

    /// Broadcasts a scalar into all four f32 lanes of `dst` (NEON `DUP`);
    /// one vector micro-op.
    pub fn broadcast_f32(&mut self, sim: &mut SimEngine, dst: VregId, value: f32) {
        sim.exec(OpClass::VecAlu, 1);
        for lane in 0..4 {
            self.write_f32_lane(dst, lane, value);
        }
    }

    /// Lane-wise f32 addition `dst = a + b` (NEON `FADD`); one vector
    /// micro-op.
    pub fn vadd_f32(&mut self, sim: &mut SimEngine, dst: VregId, a: VregId, b: VregId) {
        sim.exec(OpClass::VecAlu, 1);
        for lane in 0..4 {
            let v = self.read_f32_lane(a, lane) + self.read_f32_lane(b, lane);
            self.write_f32_lane(dst, lane, v);
        }
    }

    // ------------------------------------------------------------------
    // The Bonsai extensions (Table II).
    // ------------------------------------------------------------------

    /// `LDSPZPB r_index, [r_addr]` — loads one `f32` 3-D point from
    /// `addr`, narrows each coordinate to f16, and places it in the
    /// ZipPts buffer at `index`.
    ///
    /// Micro-ops: 1 load (12 useful bytes) + 1 convert/place.
    pub fn ldspzpb(&mut self, sim: &mut SimEngine, index: usize, addr: u64, point: [f32; 3]) {
        sim.load(addr, 12);
        sim.exec(OpClass::BonsaiCodec, 1);
        self.zip.write_point(
            index,
            [
                Half::from_f32(point[0]).to_bits(),
                Half::from_f32(point[1]).to_bits(),
                Half::from_f32(point[2]).to_bits(),
            ],
        );
    }

    /// `CPRZPB r_size, r_num_pts` — compresses the buffer in place and
    /// returns the structure size in bytes.
    ///
    /// Micro-ops: 2 (the `<sign,exp>` comparison pass and the
    /// bit-reordering pass).
    pub fn cprzpb(&mut self, sim: &mut SimEngine, num_pts: usize) -> usize {
        sim.exec(OpClass::BonsaiCodec, 2);
        self.zip.compress(num_pts).len()
    }

    /// `STZPB [r_addr], #ZipPtsSlices` — stores the compressed buffer to
    /// memory in 128-bit slices and returns the structure for the caller
    /// to place in its `cmprsd_strct_array` model.
    ///
    /// Micro-ops: one store per slice.
    ///
    /// # Panics
    ///
    /// Panics if `CPRZPB` has not produced a structure.
    pub fn stzpb(&mut self, sim: &mut SimEngine, addr: u64) -> CompressedLeaf {
        let leaf = self
            .zip
            .compressed()
            .expect("STZPB requires a CPRZPB result")
            .clone();
        for s in 0..leaf.slices() {
            sim.store(addr + (s * SLICE_BYTES) as u64, SLICE_BYTES as u32);
        }
        leaf
    }

    /// `LDDCP v_base, r_num_pts, [r_addr], #ZipPtsSlices` — loads the
    /// compressed structure, decompresses it, and writes the f16 points
    /// into six vector registers `v_base .. v_base+6`:
    /// `v_base+2c` holds points 0..8 of coordinate `c`, `v_base+2c+1`
    /// points 8..16.
    ///
    /// Micro-ops: one load per slice + 1 decompress + 3 write-backs.
    ///
    /// # Panics
    ///
    /// Panics if `v_base + 6 > 32` or the structure is malformed.
    pub fn lddcp(
        &mut self,
        sim: &mut SimEngine,
        v_base: VregId,
        num_pts: usize,
        addr: u64,
        bytes: &[u8],
    ) -> CoordFlags {
        assert!(v_base + 6 <= 32, "LDDCP needs six registers from v{v_base}");
        let slices = slices_for_bytes(bytes.len());
        for s in 0..slices {
            sim.load(addr + (s * SLICE_BYTES) as u64, SLICE_BYTES as u32);
        }
        self.zip.stage_compressed(bytes);
        sim.exec(OpClass::BonsaiCodec, 1);
        let flags = self.zip.decompress(num_pts);
        sim.exec(OpClass::VecAlu, 3);
        for coord in 0..3 {
            for i in 0..MAX_POINTS {
                let h = if i < num_pts {
                    self.zip.point(i)[coord]
                } else {
                    0
                };
                self.write_u16_lane(v_base + 2 * coord + i / 8, i % 8, h);
            }
        }
        flags
    }

    /// `SQDWEL` / `SQDWEH` — the vector square-of-differences with error
    /// computation (Figures 7 and 8).
    ///
    /// For each of the four lanes: `B′` (an f16 lane of `vb`, low or high
    /// half) is extended to f32 value-preservingly, the FU computes
    /// `(A − B′)²` into `dst_sq` and the worst-case error
    /// `2·|A−B′|·max(δB) + max(δB)²` into `dst_err`, fetching the two
    /// exponent-derived factors from the `part_error_mem` LUT.
    ///
    /// Micro-ops: 1.
    pub fn sqdwe(
        &mut self,
        sim: &mut SimEngine,
        dst_sq: VregId,
        dst_err: VregId,
        va: VregId,
        vb: VregId,
        half: HalfSel,
    ) {
        sim.exec(OpClass::BonsaiSqdwe, 1);
        let base = match half {
            HalfSel::Low => 0,
            HalfSel::High => 4,
        };
        for lane in 0..4 {
            let a = self.read_f32_lane(va, lane);
            let h = Half::from_bits(self.read_u16_lane(vb, base + lane));
            let b = h.to_f32();
            let diff = a - b;
            let err = self
                .lut
                .max_squared_difference_error(diff.abs(), h.exponent_field());
            self.write_f32_lane(dst_sq, lane, diff * diff);
            self.write_f32_lane(dst_err, lane, err);
        }
    }

    /// `SQDWEL` — low half of `vb`. See [`sqdwe`](Self::sqdwe).
    pub fn sqdwel(
        &mut self,
        sim: &mut SimEngine,
        dst_sq: VregId,
        dst_err: VregId,
        va: VregId,
        vb: VregId,
    ) {
        self.sqdwe(sim, dst_sq, dst_err, va, vb, HalfSel::Low);
    }

    /// `SQDWEH` — high half of `vb`. See [`sqdwe`](Self::sqdwe).
    pub fn sqdweh(
        &mut self,
        sim: &mut SimEngine,
        dst_sq: VregId,
        dst_err: VregId,
        va: VregId,
        vb: VregId,
    ) {
        self.sqdwe(sim, dst_sq, dst_err, va, vb, HalfSel::High);
    }
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bonsai_sim::{Counters, CpuConfig};

    fn points() -> Vec<[f32; 3]> {
        vec![
            [8.2, -4.8, 1.0],
            [9.7, -8.5, 1.1],
            [12.4, -6.0, 0.9],
            [12.9, -3.9, 1.05],
            [14.7, -2.5, 0.95],
        ]
    }

    fn compress_leaf(sim: &mut SimEngine, m: &mut Machine, pts: &[[f32; 3]]) -> CompressedLeaf {
        for (i, p) in pts.iter().enumerate() {
            m.ldspzpb(sim, i, 0x1000 + 12 * i as u64, *p);
        }
        m.cprzpb(sim, pts.len());
        m.stzpb(sim, 0x9000)
    }

    #[test]
    fn compress_decompress_through_instructions() {
        let mut sim = SimEngine::disabled();
        let mut m = Machine::new();
        let pts = points();
        let leaf = compress_leaf(&mut sim, &mut m, &pts);

        let mut m2 = Machine::new();
        let flags = m2.lddcp(&mut sim, 0, pts.len(), 0x9000, leaf.bytes());
        assert_eq!(flags, leaf.flags());
        // Registers hold the same f16 values LDSPZPB produced.
        for (i, p) in pts.iter().enumerate() {
            for (c, &coord) in p.iter().enumerate() {
                let got = Half::from_bits(m2.read_u16_lane(2 * c, i));
                let expect = Half::from_f32(coord);
                assert_eq!(got, expect, "point {i} coord {c}");
            }
        }
    }

    #[test]
    fn lddcp_fills_high_registers_past_eight_points() {
        let mut sim = SimEngine::disabled();
        let mut m = Machine::new();
        let pts: Vec<[f32; 3]> = (0..15)
            .map(|i| [20.0 + i as f32 * 0.3, -5.0, 2.0 + i as f32 * 0.01])
            .collect();
        let leaf = compress_leaf(&mut sim, &mut m, &pts);
        let mut m2 = Machine::new();
        m2.lddcp(&mut sim, 6, 15, 0x9000, leaf.bytes());
        // Point 12's x lives in v7 (= 6 + 0*2 + 12/8), lane 4.
        let got = Half::from_bits(m2.read_u16_lane(7, 4));
        assert_eq!(got, Half::from_f32(pts[12][0]));
        // Unused lane 15 is zero.
        assert_eq!(m2.read_u16_lane(7, 7), 0);
    }

    #[test]
    fn micro_op_charges_match_table2_expansion() {
        let mut sim = SimEngine::new(&CpuConfig::a72_like());
        let mut m = Machine::new();
        let pts = points();
        let leaf = compress_leaf(&mut sim, &mut m, &pts);
        let c: Counters = sim.totals();
        // 5 × LDSPZPB = 5 loads + 5 codec; CPRZPB = 2 codec;
        // STZPB = slices stores.
        assert_eq!(c.loads, 5);
        assert_eq!(c.stores, leaf.slices() as u64);
        assert_eq!(c.ops_of(OpClass::BonsaiCodec), 7);

        sim.reset_counters();
        m.lddcp(&mut sim, 0, pts.len(), 0x9000, leaf.bytes());
        let c = sim.totals();
        assert_eq!(c.loads, leaf.slices() as u64);
        assert_eq!(c.ops_of(OpClass::BonsaiCodec), 1);
        assert_eq!(c.ops_of(OpClass::VecAlu), 3);

        sim.reset_counters();
        m.broadcast_f32(&mut sim, 10, 1.0);
        m.sqdwel(&mut sim, 11, 12, 10, 0);
        m.sqdweh(&mut sim, 13, 14, 10, 0);
        let c = sim.totals();
        assert_eq!(c.ops_of(OpClass::BonsaiSqdwe), 2);
        assert_eq!(c.ops_of(OpClass::VecAlu), 1);
    }

    #[test]
    fn sqdwe_computes_square_and_error_per_lane() {
        let mut sim = SimEngine::disabled();
        let mut m = Machine::new();
        // vb lanes: f16 of 1.0, 2.0, -3.0, 0.5 in the low half.
        let vals = [1.0f32, 2.0, -3.0, 0.5];
        for (lane, v) in vals.iter().enumerate() {
            m.write_u16_lane(0, lane, Half::from_f32(*v).to_bits());
        }
        m.broadcast_f32(&mut sim, 1, 2.0); // A = 2.0 in all lanes
        m.sqdwel(&mut sim, 2, 3, 1, 0);
        let lut = PartErrorMem::new();
        for (lane, v) in vals.iter().enumerate() {
            let b = Half::from_f32(*v);
            let diff = 2.0 - b.to_f32();
            assert_eq!(m.read_f32_lane(2, lane), diff * diff, "sq lane {lane}");
            let expect_err = lut.max_squared_difference_error(diff.abs(), b.exponent_field());
            assert_eq!(m.read_f32_lane(3, lane), expect_err, "err lane {lane}");
        }
    }

    #[test]
    fn sqdwe_high_half_reads_lanes_4_to_8() {
        let mut sim = SimEngine::disabled();
        let mut m = Machine::new();
        m.write_u16_lane(0, 6, Half::from_f32(4.0).to_bits());
        m.broadcast_f32(&mut sim, 1, 0.0);
        m.sqdweh(&mut sim, 2, 3, 1, 0);
        assert_eq!(m.read_f32_lane(2, 2), 16.0);
    }

    #[test]
    fn u16_lane_packing() {
        let mut m = Machine::new();
        for lane in 0..8 {
            m.write_u16_lane(5, lane, 0x1000 + lane as u16);
        }
        for lane in 0..8 {
            assert_eq!(m.read_u16_lane(5, lane), 0x1000 + lane as u16);
        }
        // Overwriting one lane leaves neighbours intact.
        m.write_u16_lane(5, 3, 0xDEAD);
        assert_eq!(m.read_u16_lane(5, 2), 0x1002);
        assert_eq!(m.read_u16_lane(5, 3), 0xDEAD);
        assert_eq!(m.read_u16_lane(5, 4), 0x1004);
    }

    #[test]
    #[should_panic(expected = "CPRZPB")]
    fn stzpb_without_compress_panics() {
        let mut sim = SimEngine::disabled();
        Machine::new().stzpb(&mut sim, 0);
    }

    #[test]
    #[should_panic(expected = "six registers")]
    fn lddcp_register_overflow_panics() {
        let mut sim = SimEngine::disabled();
        let mut m = Machine::new();
        m.lddcp(&mut sim, 27, 1, 0, &[0u8; 7]);
    }

    #[test]
    fn vadd_adds_lanewise() {
        let mut sim = SimEngine::disabled();
        let mut m = Machine::new();
        for lane in 0..4 {
            m.write_f32_lane(0, lane, lane as f32);
            m.write_f32_lane(1, lane, 10.0);
        }
        m.vadd_f32(&mut sim, 2, 0, 1);
        for lane in 0..4 {
            assert_eq!(m.read_f32_lane(2, lane), 10.0 + lane as f32);
        }
    }
}
