//! Synthetic LiDAR sensing and procedural urban driving sequences.
//!
//! The paper stimulates Autoware's euclidean-cluster node with an
//! eight-minute proprietary driving log [Tier IV data]. That data is not
//! redistributable, so this crate synthesizes the equivalent: a
//! procedurally generated urban corridor ([`UrbanWorld`]) sensed by a
//! Velodyne HDL-64E-like beam model ([`Hdl64e`]) from a vehicle driving
//! through it ([`DrivingSequence`]).
//!
//! What matters for K-D Bonsai is preserved by construction:
//!
//! * points come from *surfaces* (walls, cars, ground, poles), so k-d
//!   tree leaves group spatially local points — the source of
//!   `<sign, exponent>` value similarity;
//! * the coordinate origin is the sensor, so coordinate magnitudes are
//!   bounded by the 120 m range — the source of exponent compressibility
//!   and the reason f16's range suffices (Section III-B);
//! * frame-to-frame point counts vary with the passing scenery, which is
//!   what makes tail latency (Figure 11) differ from the mean.
//!
//! Everything is deterministic given a seed.
//!
//! # Examples
//!
//! ```
//! use bonsai_lidar::{DrivingSequence, SequenceConfig};
//!
//! let seq = DrivingSequence::new(SequenceConfig::small_test());
//! let frame = seq.frame(0);
//! assert!(frame.len() > 1_000);
//! // All points within sensor range.
//! assert!(frame.iter().all(|p| p.norm() <= 121.0));
//! ```

#![forbid(unsafe_code)]

mod scene;
mod sensor;
mod sequence;
mod world;

pub use scene::{ObjectKind, Primitive, Scene, SceneObject};
pub use sensor::{Hdl64e, SensorConfig};
pub use sequence::{DrivingSequence, SequenceConfig};
pub use world::{UrbanWorld, WorldConfig};
