use bonsai_geom::{Point3, Pose};

use crate::scene::ObjectKind;
use crate::sensor::{Hdl64e, SensorConfig};
use crate::world::{UrbanWorld, WorldConfig};

/// Parameters of a simulated driving sequence.
///
/// The paper's stimulus is an eight-minute drive sampled at the LiDAR's
/// 10 Hz; [`SequenceConfig::paper_drive`] mirrors that (4800 frames),
/// and the experiments systematically sub-sample it exactly as Section
/// V-A describes (20 samples × 300 ms).
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceConfig {
    /// Total drive duration, seconds.
    pub duration_s: f32,
    /// Frame rate, Hz.
    pub frame_hz: f32,
    /// Vehicle speed along the corridor, m/s.
    pub speed_mps: f32,
    /// The world to drive through.
    pub world: WorldConfig,
    /// The sensor model.
    pub sensor: SensorConfig,
}

impl SequenceConfig {
    /// The paper-scale stimulus: 8 minutes at 10 Hz (4800 frames).
    pub fn paper_drive() -> SequenceConfig {
        SequenceConfig {
            duration_s: 480.0,
            frame_hz: 10.0,
            speed_mps: 13.9, // ~50 km/h urban arterial
            world: WorldConfig::eight_minute_drive(),
            sensor: SensorConfig::hdl64e(),
        }
    }

    /// A small deterministic sequence for unit tests and doc examples
    /// (2 s, coarse azimuth grid).
    pub fn small_test() -> SequenceConfig {
        SequenceConfig {
            duration_s: 2.0,
            frame_hz: 10.0,
            speed_mps: 13.9,
            world: WorldConfig {
                length: 300.0,
                ..WorldConfig::default()
            },
            sensor: SensorConfig {
                azimuth_steps: 240,
                ..SensorConfig::hdl64e()
            },
        }
    }
}

impl Default for SequenceConfig {
    fn default() -> SequenceConfig {
        SequenceConfig::paper_drive()
    }
}

/// A deterministic driving sequence: world + trajectory + sensor.
///
/// Frames are generated on demand ([`frame`](DrivingSequence::frame)), so
/// sub-sampled experiments only pay for the frames they simulate — the
/// same reason the paper sub-samples its gem5 runs.
///
/// # Examples
///
/// ```
/// use bonsai_lidar::{DrivingSequence, SequenceConfig};
///
/// let seq = DrivingSequence::new(SequenceConfig::small_test());
/// assert_eq!(seq.num_frames(), 20);
/// let f0 = seq.frame(0);
/// let f10 = seq.frame(10);
/// assert_ne!(f0.len(), 0);
/// assert_ne!(f0, f10); // the scenery moved
/// ```
#[derive(Debug, Clone)]
pub struct DrivingSequence {
    cfg: SequenceConfig,
    world: UrbanWorld,
    sensor: Hdl64e,
}

impl DrivingSequence {
    /// Builds the sequence (generates the world; frames are lazy).
    pub fn new(cfg: SequenceConfig) -> DrivingSequence {
        let world = UrbanWorld::generate(cfg.world.clone());
        let sensor = Hdl64e::new(cfg.sensor.clone());
        DrivingSequence { cfg, world, sensor }
    }

    /// Number of frames in the sequence.
    pub fn num_frames(&self) -> usize {
        (self.cfg.duration_s * self.cfg.frame_hz) as usize
    }

    /// The vehicle pose at frame `i`: driving down the corridor with a
    /// gentle lane wiggle and matching heading.
    pub fn pose(&self, i: usize) -> Pose {
        let t = i as f32 / self.cfg.frame_hz;
        let x = 20.0 + self.cfg.speed_mps * t;
        // Low-frequency lane wiggle (lane changes, curvature).
        let y = -1.5 + 1.2 * (0.02 * x).sin();
        let dy_dx = 1.2 * 0.02 * (0.02 * x).cos();
        let yaw = dy_dx.atan() as f64;
        Pose::from_translation_euler(Point3::new(x, y, 0.0), 0.0, 0.0, yaw)
    }

    /// Generates frame `i`: the vehicle-frame point cloud.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_frames()`.
    pub fn frame(&self, i: usize) -> Vec<Point3> {
        self.frame_labeled(i).into_iter().map(|(p, _)| p).collect()
    }

    /// Generates frame `i` with ground-truth labels.
    pub fn frame_labeled(&self, i: usize) -> Vec<(Point3, ObjectKind)> {
        assert!(
            i < self.num_frames(),
            "frame {i} out of {}",
            self.num_frames()
        );
        let t = i as f32 / self.cfg.frame_hz;
        let pose = self.pose(i);
        let scene = self.world.scene_at(t, pose.translation.x);
        self.sensor.scan_labeled(&scene, &pose, i as u64)
    }

    /// The sequence configuration.
    pub fn config(&self) -> &SequenceConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq() -> DrivingSequence {
        DrivingSequence::new(SequenceConfig::small_test())
    }

    #[test]
    fn frames_are_deterministic() {
        let s = seq();
        assert_eq!(s.frame(3), s.frame(3));
    }

    #[test]
    fn vehicle_progresses_along_the_road() {
        let s = seq();
        let p0 = s.pose(0).translation;
        let p10 = s.pose(10).translation;
        assert!((p10.x - p0.x - 13.9).abs() < 0.01, "1 s at 13.9 m/s");
    }

    #[test]
    fn frames_have_lidar_like_statistics() {
        let s = seq();
        let cloud = s.frame(5);
        assert!(cloud.len() > 2000, "got {} points", cloud.len());
        // Points concentrate near the vehicle (ground returns dominate).
        let near = cloud.iter().filter(|p| p.planar_range() < 30.0).count();
        assert!(near as f64 > cloud.len() as f64 * 0.5);
        // And lie within the sensor's vertical span.
        assert!(cloud.iter().all(|p| p.z > -3.0 && p.z < 20.0));
    }

    #[test]
    fn labels_cover_multiple_kinds() {
        let s = seq();
        let kinds: std::collections::HashSet<_> = s
            .frame_labeled(8)
            .iter()
            .map(|(_, k)| format!("{k:?}"))
            .collect();
        assert!(kinds.len() >= 3, "only {kinds:?}");
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn out_of_range_frame_panics() {
        seq().frame(10_000);
    }
}
