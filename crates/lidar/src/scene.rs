use bonsai_geom::{Aabb, Point3, Ray};

/// Semantic class of a scene object.
///
/// Labels travel with ray hits so examples can compare extracted clusters
/// against ground truth (cars vs. pedestrians vs. infrastructure).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// Road / sidewalk surface.
    Ground,
    /// Building facade.
    Building,
    /// A car (parked or moving).
    Car,
    /// A pedestrian.
    Pedestrian,
    /// A pole (street light, sign).
    Pole,
    /// A tree trunk.
    Tree,
}

/// Geometry of one scene object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Primitive {
    /// An axis-aligned box.
    Box(Aabb),
    /// The horizontal plane `z = height` (infinite extent).
    HorizontalPlane {
        /// Plane height in world coordinates.
        height: f32,
    },
    /// A vertical cylinder.
    VerticalCylinder {
        /// Axis position (z ignored).
        center: Point3,
        /// Cylinder radius.
        radius: f32,
        /// Bottom of the cylinder.
        z_min: f32,
        /// Top of the cylinder.
        z_max: f32,
    },
}

impl Primitive {
    /// Ray intersection; returns the hit parameter.
    pub fn intersect(&self, ray: &Ray) -> Option<f32> {
        match *self {
            Primitive::Box(aabb) => ray.intersect_aabb(&aabb),
            Primitive::HorizontalPlane { height } => ray.intersect_horizontal_plane(height),
            Primitive::VerticalCylinder {
                center,
                radius,
                z_min,
                z_max,
            } => ray.intersect_vertical_cylinder(center, radius, z_min, z_max),
        }
    }

    /// A conservative bounding box (`None` for infinite primitives).
    pub fn bounds(&self) -> Option<Aabb> {
        match *self {
            Primitive::Box(aabb) => Some(aabb),
            Primitive::HorizontalPlane { .. } => None,
            Primitive::VerticalCylinder {
                center,
                radius,
                z_min,
                z_max,
            } => Some(Aabb::new(
                Point3::new(center.x - radius, center.y - radius, z_min),
                Point3::new(center.x + radius, center.y + radius, z_max),
            )),
        }
    }
}

/// One object: geometry plus semantic label.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SceneObject {
    /// The shape.
    pub primitive: Primitive,
    /// The label.
    pub kind: ObjectKind,
}

/// A collection of objects a LiDAR frame is ray-cast against.
///
/// # Examples
///
/// ```
/// use bonsai_geom::{Aabb, Point3, Ray};
/// use bonsai_lidar::{ObjectKind, Primitive, Scene, SceneObject};
///
/// let mut scene = Scene::new();
/// scene.push(SceneObject {
///     primitive: Primitive::Box(Aabb::new(
///         Point3::new(5.0, -1.0, 0.0),
///         Point3::new(7.0, 1.0, 1.5),
///     )),
///     kind: ObjectKind::Car,
/// });
/// let ray = Ray::new(Point3::new(0.0, 0.0, 1.0), Point3::new(1.0, 0.0, 0.0)).unwrap();
/// let (t, kind) = scene.cast(&ray, 120.0).unwrap();
/// assert_eq!(kind, ObjectKind::Car);
/// assert!((t - 5.0).abs() < 1e-5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Scene {
    objects: Vec<SceneObject>,
    /// Cached bounds parallel to `objects` (`None` = infinite).
    bounds: Vec<Option<Aabb>>,
}

impl Scene {
    /// An empty scene.
    pub fn new() -> Scene {
        Scene::default()
    }

    /// Adds an object.
    pub fn push(&mut self, object: SceneObject) {
        self.bounds.push(object.primitive.bounds());
        self.objects.push(object);
    }

    /// The objects in insertion order.
    pub fn objects(&self) -> &[SceneObject] {
        &self.objects
    }

    /// Casts a ray and returns the nearest hit within `max_range`, with
    /// its label.
    pub fn cast(&self, ray: &Ray, max_range: f32) -> Option<(f32, ObjectKind)> {
        let mut best: Option<(f32, ObjectKind)> = None;
        for (object, bounds) in self.objects.iter().zip(&self.bounds) {
            // Cheap reject: skip objects whose bounds are already farther
            // than the current best hit.
            if let Some(b) = bounds {
                let limit = best.map_or(max_range, |(t, _)| t);
                if b.distance_squared_to(ray.origin()) > limit * limit {
                    continue;
                }
            }
            if let Some(t) = object.primitive.intersect(ray) {
                if t <= max_range && best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, object.kind));
                }
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed(min: [f32; 3], max: [f32; 3], kind: ObjectKind) -> SceneObject {
        SceneObject {
            primitive: Primitive::Box(Aabb::new(Point3::from_array(min), Point3::from_array(max))),
            kind,
        }
    }

    #[test]
    fn nearest_object_wins() {
        let mut scene = Scene::new();
        scene.push(boxed(
            [10.0, -1.0, 0.0],
            [12.0, 1.0, 2.0],
            ObjectKind::Building,
        ));
        scene.push(boxed([5.0, -1.0, 0.0], [6.0, 1.0, 2.0], ObjectKind::Car));
        let ray = Ray::new(Point3::new(0.0, 0.0, 1.0), Point3::new(1.0, 0.0, 0.0)).unwrap();
        let (t, kind) = scene.cast(&ray, 120.0).unwrap();
        assert_eq!(kind, ObjectKind::Car);
        assert!((t - 5.0).abs() < 1e-5);
    }

    #[test]
    fn range_limit_hides_far_objects() {
        let mut scene = Scene::new();
        scene.push(boxed(
            [100.0, -1.0, 0.0],
            [101.0, 1.0, 2.0],
            ObjectKind::Building,
        ));
        let ray = Ray::new(Point3::new(0.0, 0.0, 1.0), Point3::new(1.0, 0.0, 0.0)).unwrap();
        assert!(scene.cast(&ray, 50.0).is_none());
        assert!(scene.cast(&ray, 120.0).is_some());
    }

    #[test]
    fn ground_plane_is_hit_by_downward_rays() {
        let mut scene = Scene::new();
        scene.push(SceneObject {
            primitive: Primitive::HorizontalPlane { height: 0.0 },
            kind: ObjectKind::Ground,
        });
        let down = Ray::new(Point3::new(0.0, 0.0, 1.8), Point3::new(1.0, 0.0, -0.1)).unwrap();
        let (_, kind) = scene.cast(&down, 120.0).unwrap();
        assert_eq!(kind, ObjectKind::Ground);
        let up = Ray::new(Point3::new(0.0, 0.0, 1.8), Point3::new(1.0, 0.0, 0.1)).unwrap();
        assert!(scene.cast(&up, 120.0).is_none());
    }

    #[test]
    fn cylinder_bounds_are_tight_enough() {
        let p = Primitive::VerticalCylinder {
            center: Point3::new(3.0, 4.0, 0.0),
            radius: 0.5,
            z_min: 0.0,
            z_max: 5.0,
        };
        let b = p.bounds().unwrap();
        assert_eq!(b.min, Point3::new(2.5, 3.5, 0.0));
        assert_eq!(b.max, Point3::new(3.5, 4.5, 5.0));
    }

    #[test]
    fn empty_scene_casts_nothing() {
        let ray = Ray::new(Point3::ZERO, Point3::new(1.0, 0.0, 0.0)).unwrap();
        assert!(Scene::new().cast(&ray, 120.0).is_none());
    }
}
