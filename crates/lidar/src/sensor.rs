use bonsai_geom::{Point3, Pose, Ray};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scene::{ObjectKind, Scene};

/// Beam-model parameters of the spinning LiDAR.
///
/// Defaults model the Velodyne HDL-64E the paper cites: 64 beams spanning
/// +2° to −24.8° of elevation, 120 m maximum range, mounted ~1.73 m above
/// ground. Azimuth resolution is configurable — the experiments use a
/// coarser step than the real 0.17° so frames hold the 10–40 k points
/// that Autoware's euclidean-cluster node sees *after* its preprocessing,
/// at tractable simulation cost.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorConfig {
    /// Number of laser beams (rows).
    pub beams: u32,
    /// Highest beam elevation, radians.
    pub elevation_max: f32,
    /// Lowest beam elevation, radians.
    pub elevation_min: f32,
    /// Number of azimuth steps per revolution (columns).
    pub azimuth_steps: u32,
    /// Maximum sensing range, meters.
    pub max_range: f32,
    /// Minimum sensing range, meters (self-returns are discarded).
    pub min_range: f32,
    /// Sensor height above the vehicle origin, meters.
    pub mount_height: f32,
    /// Standard deviation of range noise, meters.
    pub range_noise_std: f32,
}

impl SensorConfig {
    /// The HDL-64E-like default.
    pub fn hdl64e() -> SensorConfig {
        SensorConfig {
            beams: 64,
            elevation_max: 2.0_f32.to_radians(),
            elevation_min: -24.8_f32.to_radians(),
            azimuth_steps: 720,
            max_range: 120.0,
            min_range: 0.9,
            mount_height: 1.73,
            range_noise_std: 0.015,
        }
    }
}

impl Default for SensorConfig {
    fn default() -> SensorConfig {
        SensorConfig::hdl64e()
    }
}

/// The spinning-LiDAR simulator.
///
/// # Examples
///
/// ```
/// use bonsai_geom::{Point3, Pose};
/// use bonsai_lidar::{Hdl64e, ObjectKind, Primitive, Scene, SceneObject, SensorConfig};
///
/// let mut scene = Scene::new();
/// scene.push(SceneObject {
///     primitive: Primitive::HorizontalPlane { height: 0.0 },
///     kind: ObjectKind::Ground,
/// });
/// let sensor = Hdl64e::new(SensorConfig::hdl64e());
/// let cloud = sensor.scan(&scene, &Pose::identity(), 1);
/// assert!(!cloud.is_empty());
/// // Ground hits land near z = 0, well below the 1.73 m sensor mount.
/// assert!(cloud.iter().all(|p| p.z < 0.3));
/// ```
#[derive(Debug, Clone)]
pub struct Hdl64e {
    cfg: SensorConfig,
}

impl Hdl64e {
    /// Creates the sensor.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (no beams or azimuth steps,
    /// inverted elevation range).
    pub fn new(cfg: SensorConfig) -> Hdl64e {
        assert!(
            cfg.beams > 0 && cfg.azimuth_steps > 0,
            "degenerate sensor grid"
        );
        assert!(
            cfg.elevation_max > cfg.elevation_min,
            "inverted elevation range"
        );
        Hdl64e { cfg }
    }

    /// The configuration.
    pub fn config(&self) -> &SensorConfig {
        &self.cfg
    }

    /// Scans `scene` from vehicle pose `pose`; returns points in the
    /// *vehicle frame* (origin at the vehicle, exactly like the point
    /// clouds Autoware's perception consumes). `seed` controls the range
    /// noise deterministically.
    pub fn scan(&self, scene: &Scene, pose: &Pose, seed: u64) -> Vec<Point3> {
        self.scan_labeled(scene, pose, seed)
            .into_iter()
            .map(|(p, _)| p)
            .collect()
    }

    /// Like [`scan`](Self::scan) but keeps each point's ground-truth
    /// label.
    pub fn scan_labeled(&self, scene: &Scene, pose: &Pose, seed: u64) -> Vec<(Point3, ObjectKind)> {
        let cfg = &self.cfg;
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00D1_DA12);
        let mut out = Vec::with_capacity((cfg.beams * cfg.azimuth_steps / 4) as usize);
        let origin_world = pose.apply(Point3::new(0.0, 0.0, cfg.mount_height));
        for b in 0..cfg.beams {
            let frac = if cfg.beams == 1 {
                0.0
            } else {
                b as f32 / (cfg.beams - 1) as f32
            };
            let elevation = cfg.elevation_max + frac * (cfg.elevation_min - cfg.elevation_max);
            let (sin_el, cos_el) = elevation.sin_cos();
            for a in 0..cfg.azimuth_steps {
                let azimuth = a as f32 / cfg.azimuth_steps as f32 * std::f32::consts::TAU;
                let (sin_az, cos_az) = azimuth.sin_cos();
                // Beam direction in the vehicle frame.
                let dir_local = Point3::new(cos_el * cos_az, cos_el * sin_az, sin_el);
                let dir_world = pose.rotation.mul_point(dir_local);
                let Some(ray) = Ray::new(origin_world, dir_world) else {
                    continue;
                };
                if let Some((t, kind)) = scene.cast(&ray, cfg.max_range) {
                    let t_noisy = t + rng.gen_range(-3.0..3.0f32) * cfg.range_noise_std;
                    if (cfg.min_range..=cfg.max_range).contains(&t_noisy) {
                        // Sensor-frame point: along the local direction.
                        let p = Point3::new(0.0, 0.0, cfg.mount_height) + dir_local * t_noisy;
                        out.push((p, kind));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{Primitive, SceneObject};
    use bonsai_geom::Aabb;

    fn ground_scene() -> Scene {
        let mut s = Scene::new();
        s.push(SceneObject {
            primitive: Primitive::HorizontalPlane { height: 0.0 },
            kind: ObjectKind::Ground,
        });
        s
    }

    #[test]
    fn scan_is_deterministic_per_seed() {
        let sensor = Hdl64e::new(SensorConfig {
            azimuth_steps: 90,
            ..SensorConfig::hdl64e()
        });
        let a = sensor.scan(&ground_scene(), &Pose::identity(), 7);
        let b = sensor.scan(&ground_scene(), &Pose::identity(), 7);
        let c = sensor.scan(&ground_scene(), &Pose::identity(), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn points_respect_range_limits() {
        let sensor = Hdl64e::new(SensorConfig {
            azimuth_steps: 180,
            ..SensorConfig::hdl64e()
        });
        let cloud = sensor.scan(&ground_scene(), &Pose::identity(), 1);
        assert!(!cloud.is_empty());
        for p in &cloud {
            let range = (*p - Point3::new(0.0, 0.0, 1.73)).norm();
            assert!((0.85..=120.5).contains(&range), "range {range}");
        }
    }

    #[test]
    fn wall_in_front_produces_a_vertical_patch() {
        let mut scene = ground_scene();
        scene.push(SceneObject {
            primitive: Primitive::Box(Aabb::new(
                Point3::new(10.0, -5.0, 0.0),
                Point3::new(10.5, 5.0, 4.0),
            )),
            kind: ObjectKind::Building,
        });
        let sensor = Hdl64e::new(SensorConfig {
            azimuth_steps: 360,
            range_noise_std: 0.0,
            ..SensorConfig::hdl64e()
        });
        let labeled = sensor.scan_labeled(&scene, &Pose::identity(), 1);
        let wall: Vec<Point3> = labeled
            .iter()
            .filter(|(_, k)| *k == ObjectKind::Building)
            .map(|(p, _)| *p)
            .collect();
        assert!(wall.len() > 20);
        for p in &wall {
            assert!((p.x - 10.0).abs() < 0.2, "wall x {}", p.x);
            assert!(p.z >= -0.01 && p.z <= 4.01);
        }
    }

    #[test]
    fn vehicle_pose_changes_world_hits_but_points_stay_vehicle_frame() {
        let mut scene = ground_scene();
        scene.push(SceneObject {
            primitive: Primitive::Box(Aabb::new(
                Point3::new(20.0, -2.0, 0.0),
                Point3::new(21.0, 2.0, 3.0),
            )),
            kind: ObjectKind::Building,
        });
        let sensor = Hdl64e::new(SensorConfig {
            azimuth_steps: 360,
            range_noise_std: 0.0,
            ..SensorConfig::hdl64e()
        });
        // Vehicle 10 m closer: the wall appears ~10 m ahead.
        let pose = Pose::from_translation_euler(Point3::new(10.0, 0.0, 0.0), 0.0, 0.0, 0.0);
        let labeled = sensor.scan_labeled(&scene, &pose, 1);
        let min_x = labeled
            .iter()
            .filter(|(_, k)| *k == ObjectKind::Building)
            .map(|(p, _)| p.x)
            .fold(f32::INFINITY, f32::min);
        assert!(
            (min_x - 10.0).abs() < 0.3,
            "wall at {min_x} in vehicle frame"
        );
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_beams_rejected() {
        Hdl64e::new(SensorConfig {
            beams: 0,
            ..SensorConfig::hdl64e()
        });
    }
}
