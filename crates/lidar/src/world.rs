use bonsai_geom::{Aabb, Point3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::scene::{ObjectKind, Primitive, Scene, SceneObject};

/// Parameters of the procedural urban corridor.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldConfig {
    /// Length of the corridor along +x, meters.
    pub length: f32,
    /// Road half-width (vehicle drives near y = 0), meters.
    pub road_half_width: f32,
    /// Building setback from the road edge, meters.
    pub building_setback: f32,
    /// Mean spacing between parked cars, meters.
    pub parked_car_spacing: f32,
    /// Mean spacing between poles, meters.
    pub pole_spacing: f32,
    /// Mean spacing between pedestrians, meters.
    pub pedestrian_spacing: f32,
    /// Number of oncoming cars circulating in the corridor.
    pub moving_cars: u32,
    /// Speed of oncoming traffic, m/s.
    pub traffic_speed: f32,
    /// RNG seed.
    pub seed: u64,
}

impl WorldConfig {
    /// A corridor long enough for the paper's eight-minute drive at
    /// ~14 m/s (≈ 6.7 km) plus margins.
    pub fn eight_minute_drive() -> WorldConfig {
        WorldConfig {
            length: 7000.0,
            ..WorldConfig::default()
        }
    }
}

impl Default for WorldConfig {
    fn default() -> WorldConfig {
        WorldConfig {
            length: 1000.0,
            road_half_width: 7.0,
            building_setback: 4.0,
            parked_car_spacing: 13.0,
            pole_spacing: 30.0,
            pedestrian_spacing: 22.0,
            moving_cars: 6,
            traffic_speed: 12.0,
            seed: 2023,
        }
    }
}

/// The static world plus moving traffic: a straight urban corridor with
/// building walls, parked cars, poles, trees and pedestrians on both
/// sides.
///
/// [`scene_at`](UrbanWorld::scene_at) materializes the [`Scene`] for a
/// point in time (moving cars advance, everything else is static).
/// Only objects within sensing distance of `vehicle_x` are emitted, which
/// keeps ray casting linear in the *local* scene size.
///
/// # Examples
///
/// ```
/// use bonsai_lidar::{UrbanWorld, WorldConfig};
///
/// let world = UrbanWorld::generate(WorldConfig::default());
/// let scene = world.scene_at(0.0, 100.0);
/// assert!(scene.objects().len() > 20);
/// ```
#[derive(Debug, Clone)]
pub struct UrbanWorld {
    cfg: WorldConfig,
    statics: Vec<SceneObject>,
    /// Initial x of each moving car (they travel in −x at
    /// `traffic_speed`, wrapping around the corridor).
    moving_car_starts: Vec<f32>,
}

/// Objects farther than this from the vehicle are culled from the scene
/// (beyond sensing range).
const CULL_DISTANCE: f32 = 130.0;

impl UrbanWorld {
    /// Generates the world deterministically from `cfg.seed`.
    pub fn generate(cfg: WorldConfig) -> UrbanWorld {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut statics = Vec::new();

        // Ground plane.
        statics.push(SceneObject {
            primitive: Primitive::HorizontalPlane { height: 0.0 },
            kind: ObjectKind::Ground,
        });

        // Building walls on both sides, as segments with varying depth
        // and height, with occasional gaps (side streets).
        for side in [-1.0f32, 1.0] {
            let mut x = 0.0;
            while x < cfg.length {
                let seg_len = rng.gen_range(15.0..45.0f32);
                if rng.gen_bool(0.8) {
                    let y0 = side * (cfg.road_half_width + cfg.building_setback);
                    let depth = rng.gen_range(5.0..15.0f32);
                    let y1 = y0 + side * depth;
                    let height = rng.gen_range(4.0..18.0f32);
                    statics.push(SceneObject {
                        primitive: Primitive::Box(Aabb::new(
                            Point3::new(x, y0.min(y1), 0.0),
                            Point3::new(x + seg_len, y0.max(y1), height),
                        )),
                        kind: ObjectKind::Building,
                    });
                }
                x += seg_len + rng.gen_range(0.0..6.0f32);
            }
        }

        // Parked cars along both curbs.
        for side in [-1.0f32, 1.0] {
            let mut x = rng.gen_range(0.0..cfg.parked_car_spacing);
            while x < cfg.length {
                if rng.gen_bool(0.65) {
                    let y = side * (cfg.road_half_width - 1.2);
                    let (len, wid, hgt) = (
                        rng.gen_range(4.0..4.9f32),
                        rng.gen_range(1.7..1.95f32),
                        rng.gen_range(1.4..1.8f32),
                    );
                    statics.push(SceneObject {
                        primitive: Primitive::Box(Aabb::new(
                            Point3::new(x, y - wid / 2.0, 0.0),
                            Point3::new(x + len, y + wid / 2.0, hgt),
                        )),
                        kind: ObjectKind::Car,
                    });
                }
                x += cfg.parked_car_spacing * rng.gen_range(0.7..1.3f32);
            }
        }

        // Poles and trees on the sidewalks.
        for side in [-1.0f32, 1.0] {
            let mut x = rng.gen_range(0.0..cfg.pole_spacing);
            while x < cfg.length {
                let y = side * (cfg.road_half_width + 1.0);
                let is_tree = rng.gen_bool(0.4);
                statics.push(SceneObject {
                    primitive: Primitive::VerticalCylinder {
                        center: Point3::new(x, y, 0.0),
                        radius: if is_tree {
                            rng.gen_range(0.15..0.4)
                        } else {
                            0.08
                        },
                        z_min: 0.0,
                        z_max: if is_tree {
                            rng.gen_range(3.0..6.0)
                        } else {
                            rng.gen_range(5.0..8.0)
                        },
                    },
                    kind: if is_tree {
                        ObjectKind::Tree
                    } else {
                        ObjectKind::Pole
                    },
                });
                x += cfg.pole_spacing * rng.gen_range(0.8..1.2f32);
            }
        }

        // Pedestrians on the sidewalks (static within one frame).
        for side in [-1.0f32, 1.0] {
            let mut x = rng.gen_range(0.0..cfg.pedestrian_spacing);
            while x < cfg.length {
                if rng.gen_bool(0.5) {
                    let y = side * (cfg.road_half_width + rng.gen_range(1.5..3.0f32));
                    statics.push(SceneObject {
                        primitive: Primitive::VerticalCylinder {
                            center: Point3::new(x, y, 0.0),
                            radius: rng.gen_range(0.18..0.3),
                            z_min: 0.0,
                            z_max: rng.gen_range(1.5..1.9),
                        },
                        kind: ObjectKind::Pedestrian,
                    });
                }
                x += cfg.pedestrian_spacing * rng.gen_range(0.6..1.4f32);
            }
        }

        let moving_car_starts = (0..cfg.moving_cars)
            .map(|_| rng.gen_range(0.0..cfg.length))
            .collect();

        UrbanWorld {
            cfg,
            statics,
            moving_car_starts,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.cfg
    }

    /// Materializes the scene at time `t` (seconds), culled to the
    /// neighbourhood of `vehicle_x`.
    pub fn scene_at(&self, t: f32, vehicle_x: f32) -> Scene {
        let mut scene = Scene::new();
        let lo = vehicle_x - CULL_DISTANCE;
        let hi = vehicle_x + CULL_DISTANCE;
        for obj in &self.statics {
            let keep = match obj.primitive.bounds() {
                Some(b) => b.max.x >= lo && b.min.x <= hi,
                None => true,
            };
            if keep {
                scene.push(*obj);
            }
        }
        // Oncoming traffic in the opposite lane (y ≈ +3), travelling −x.
        for (i, start) in self.moving_car_starts.iter().enumerate() {
            let x = (start - self.cfg.traffic_speed * t).rem_euclid(self.cfg.length);
            if x < lo || x > hi {
                continue;
            }
            let y = 3.0 + (i % 2) as f32 * 0.4;
            scene.push(SceneObject {
                primitive: Primitive::Box(Aabb::new(
                    Point3::new(x, y - 0.9, 0.0),
                    Point3::new(x + 4.4, y + 0.9, 1.5),
                )),
                kind: ObjectKind::Car,
            });
        }
        scene
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = UrbanWorld::generate(WorldConfig::default());
        let b = UrbanWorld::generate(WorldConfig::default());
        assert_eq!(a.statics.len(), b.statics.len());
        let c = UrbanWorld::generate(WorldConfig {
            seed: 99,
            ..WorldConfig::default()
        });
        assert_ne!(a.statics.len(), c.statics.len());
    }

    #[test]
    fn scene_culling_tracks_the_vehicle() {
        let world = UrbanWorld::generate(WorldConfig {
            length: 2000.0,
            ..Default::default()
        });
        let near_start = world.scene_at(0.0, 50.0);
        let near_end = world.scene_at(0.0, 1950.0);
        // Both local scenes are populated but much smaller than the world.
        assert!(near_start.objects().len() > 10);
        assert!(near_end.objects().len() > 10);
        assert!(near_start.objects().len() < world.statics.len() / 2);
        // Every kept bounded object is near its vehicle position.
        for obj in near_start.objects() {
            if let Some(b) = obj.primitive.bounds() {
                assert!(b.min.x <= 50.0 + CULL_DISTANCE + 1.0);
            }
        }
    }

    #[test]
    fn moving_cars_advance_with_time() {
        let world = UrbanWorld::generate(WorldConfig::default());
        let count_at = |t: f32| {
            world
                .scene_at(t, 500.0)
                .objects()
                .iter()
                .filter(|o| o.kind == ObjectKind::Car)
                .count()
        };
        // Car population near the vehicle changes as traffic flows.
        let counts: Vec<usize> = (0..20).map(|i| count_at(i as f32 * 3.0)).collect();
        assert!(
            counts.windows(2).any(|w| w[0] != w[1]),
            "traffic never moved: {counts:?}"
        );
    }

    #[test]
    fn world_contains_all_object_kinds() {
        let world = UrbanWorld::generate(WorldConfig::default());
        let kinds: std::collections::HashSet<_> = world
            .statics
            .iter()
            .map(|o| format!("{:?}", o.kind))
            .collect();
        for expect in ["Ground", "Building", "Car", "Pedestrian", "Pole", "Tree"] {
            assert!(kinds.contains(expect), "missing {expect}");
        }
    }
}
